module Leb = Tq_util.Leb128

type t =
  | Rtn_entry of { icount : int; routine : int; sp : int }
  | Ret of { icount : int; sp : int }
  | Load of { icount : int; static : int; ea : int; size : int; sp : int }
  | Store of { icount : int; static : int; ea : int; size : int; sp : int }
  | Block_copy of {
      icount : int;
      static : int;
      src : int;
      dst : int;
      len : int;
      sp : int;
    }
  | Prefetch of { icount : int; ea : int; size : int }
  | Block_exec of { icount : int; addr : int; n : int }
  | End of { icount : int }

type kind =
  | KRtn_entry
  | KRet
  | KLoad
  | KStore
  | KBlock_copy
  | KPrefetch
  | KBlock_exec
  | KEnd

let all_kinds =
  [ KRtn_entry; KRet; KLoad; KStore; KBlock_copy; KPrefetch; KBlock_exec; KEnd ]

let n_kinds = 8

let kind_tag = function
  | KRtn_entry -> 0
  | KRet -> 1
  | KLoad -> 2
  | KStore -> 3
  | KBlock_copy -> 4
  | KPrefetch -> 5
  | KBlock_exec -> 6
  | KEnd -> 7

let tag = function
  | Rtn_entry _ -> 0
  | Ret _ -> 1
  | Load _ -> 2
  | Store _ -> 3
  | Block_copy _ -> 4
  | Prefetch _ -> 5
  | Block_exec _ -> 6
  | End _ -> 7

let icount = function
  | Rtn_entry { icount; _ }
  | Ret { icount; _ }
  | Load { icount; _ }
  | Store { icount; _ }
  | Block_copy { icount; _ }
  | Prefetch { icount; _ }
  | Block_exec { icount; _ }
  | End { icount } ->
      icount

(* ---------- per-iteration numeric fields (v4 repeat chunks) ----------

   A repeat chunk stores a loop body once and reconstructs each iteration by
   advancing the body's "numeric" fields — the values that change per
   iteration (instruction counts, addresses, lengths, stack pointers).
   Everything else (constructor, [static], [routine], [size], [addr], [n])
   is "structural" and must be identical across iterations.  The canonical
   field order below is part of the wire format (docs/TRACE.md). *)

let num_fields = function
  | Rtn_entry _ -> 2 (* icount sp *)
  | Ret _ -> 2 (* icount sp *)
  | Load _ -> 3 (* icount ea sp *)
  | Store _ -> 3 (* icount ea sp *)
  | Block_copy _ -> 5 (* icount src dst len sp *)
  | Prefetch _ -> 2 (* icount ea *)
  | Block_exec _ -> 1 (* icount *)
  | End _ -> 1 (* icount *)

(* Write event [ev]'s numeric fields into [out] at [off] (canonical order).
   Returns the next free offset. *)
let read_num_fields ev out off =
  match ev with
  | Rtn_entry { icount; sp; _ } ->
      out.(off) <- icount;
      out.(off + 1) <- sp;
      off + 2
  | Ret { icount; sp } ->
      out.(off) <- icount;
      out.(off + 1) <- sp;
      off + 2
  | Load { icount; ea; sp; _ } | Store { icount; ea; sp; _ } ->
      out.(off) <- icount;
      out.(off + 1) <- ea;
      out.(off + 2) <- sp;
      off + 3
  | Block_copy { icount; src; dst; len; sp; _ } ->
      out.(off) <- icount;
      out.(off + 1) <- src;
      out.(off + 2) <- dst;
      out.(off + 3) <- len;
      out.(off + 4) <- sp;
      off + 5
  | Prefetch { icount; ea; _ } ->
      out.(off) <- icount;
      out.(off + 1) <- ea;
      off + 2
  | Block_exec { icount; _ } ->
      out.(off) <- icount;
      off + 1
  | End _ ->
      out.(off) <- icount ev;
      off + 1

(* Rebuild an event from a structural template and the numeric fields at
   [vals.(off ..)].  Inverse of [read_num_fields]. *)
let with_num_fields ev vals off =
  match ev with
  | Rtn_entry { routine; _ } ->
      Rtn_entry { icount = vals.(off); routine; sp = vals.(off + 1) }
  | Ret _ -> Ret { icount = vals.(off); sp = vals.(off + 1) }
  | Load { static; size; _ } ->
      Load
        {
          icount = vals.(off);
          static;
          ea = vals.(off + 1);
          size;
          sp = vals.(off + 2);
        }
  | Store { static; size; _ } ->
      Store
        {
          icount = vals.(off);
          static;
          ea = vals.(off + 1);
          size;
          sp = vals.(off + 2);
        }
  | Block_copy { static; _ } ->
      Block_copy
        {
          icount = vals.(off);
          static;
          src = vals.(off + 1);
          dst = vals.(off + 2);
          len = vals.(off + 3);
          sp = vals.(off + 4);
        }
  | Prefetch { size; _ } ->
      Prefetch { icount = vals.(off); ea = vals.(off + 1); size }
  | Block_exec { addr; n; _ } -> Block_exec { icount = vals.(off); addr; n }
  | End _ -> End { icount = vals.(off) }

(* Do two events agree on everything except their numeric fields?  The
   matching predicate of the record-time repetition detector. *)
let struct_same a b =
  match (a, b) with
  | Rtn_entry { routine = r1; _ }, Rtn_entry { routine = r2; _ } -> r1 = r2
  | Ret _, Ret _ -> true
  | Load { static = st1; size = sz1; _ }, Load { static = st2; size = sz2; _ }
  | Store { static = st1; size = sz1; _ }, Store { static = st2; size = sz2; _ }
    ->
      st1 = st2 && sz1 = sz2
  | Block_copy { static = st1; _ }, Block_copy { static = st2; _ } -> st1 = st2
  | Prefetch { size = sz1; _ }, Prefetch { size = sz2; _ } -> sz1 = sz2
  | Block_exec { addr = a1; n = n1; _ }, Block_exec { addr = a2; n = n2; _ } ->
      a1 = a2 && n1 = n2
  | End _, End _ -> true
  | _ -> false

let pp ppf = function
  | Rtn_entry { icount; routine; sp } ->
      Format.fprintf ppf "@%d rtn-entry r%d sp=0x%x" icount routine sp
  | Ret { icount; sp } -> Format.fprintf ppf "@%d ret sp=0x%x" icount sp
  | Load { icount; static; ea; size; sp } ->
      Format.fprintf ppf "@%d load r%d 0x%x+%d sp=0x%x" icount static ea size sp
  | Store { icount; static; ea; size; sp } ->
      Format.fprintf ppf "@%d store r%d 0x%x+%d sp=0x%x" icount static ea size sp
  | Block_copy { icount; static; src; dst; len; sp } ->
      Format.fprintf ppf "@%d movs r%d 0x%x->0x%x+%d sp=0x%x" icount static src
        dst len sp
  | Prefetch { icount; ea; size } ->
      Format.fprintf ppf "@%d prefetch 0x%x+%d" icount ea size
  | Block_exec { icount; addr; n } ->
      Format.fprintf ppf "@%d block 0x%x n=%d" icount addr n
  | End { icount } -> Format.fprintf ppf "@%d end" icount

(* Delta state: [icount] is delta-encoded (monotone, unsigned); effective
   addresses share one previous-address register, the stack pointer and the
   block-dispatch address each their own — consecutive events of the same
   kind tend to be near each other, so the SLEB deltas stay short. *)
type state = {
  mutable s_icount : int;
  mutable s_ea : int;
  mutable s_sp : int;
  mutable s_baddr : int;
}

let fresh_state ?(icount = 0) () =
  { s_icount = icount; s_ea = 0; s_sp = 0; s_baddr = 0 }

let tag_rtn_entry = 0
let tag_ret = 1
let tag_load = 2
let tag_store = 3
let tag_block_copy = 4
let tag_prefetch = 5
let tag_block_exec = 6
let tag_end = 7

(* The tag byte carries the icount delta in its high 5 bits: consecutive
   events are a few instructions apart, so the delta almost always fits
   inline and the common case costs one byte and zero varint reads.  The
   escape value 31 means "a full ULEB delta follows". *)
let icount_escape = 31

let put_tag st buf tag icount =
  if icount < st.s_icount then
    invalid_arg
      (Printf.sprintf "Trace.Event.encode: icount regressed (%d after %d)"
         icount st.s_icount);
  let delta = icount - st.s_icount in
  if delta < icount_escape then Buffer.add_uint8 buf (tag lor (delta lsl 3))
  else begin
    Buffer.add_uint8 buf (tag lor (icount_escape lsl 3));
    Leb.write_u buf delta
  end;
  st.s_icount <- icount

let put_sp st buf sp =
  Leb.write_s buf (sp - st.s_sp);
  st.s_sp <- sp

let put_ea st buf ea =
  Leb.write_s buf (ea - st.s_ea);
  st.s_ea <- ea

let encode st buf ev =
  match ev with
  | Rtn_entry { icount; routine; sp } ->
      put_tag st buf tag_rtn_entry icount;
      Leb.write_u buf routine;
      put_sp st buf sp
  | Ret { icount; sp } ->
      put_tag st buf tag_ret icount;
      put_sp st buf sp
  | Load { icount; static; ea; size; sp } ->
      put_tag st buf tag_load icount;
      Leb.write_u buf (static + 1);
      put_ea st buf ea;
      Leb.write_u buf size;
      put_sp st buf sp
  | Store { icount; static; ea; size; sp } ->
      put_tag st buf tag_store icount;
      Leb.write_u buf (static + 1);
      put_ea st buf ea;
      Leb.write_u buf size;
      put_sp st buf sp
  | Block_copy { icount; static; src; dst; len; sp } ->
      put_tag st buf tag_block_copy icount;
      Leb.write_u buf (static + 1);
      Leb.write_s buf (src - st.s_ea);
      Leb.write_s buf (dst - src);
      st.s_ea <- dst;
      Leb.write_u buf len;
      put_sp st buf sp
  | Prefetch { icount; ea; size } ->
      put_tag st buf tag_prefetch icount;
      put_ea st buf ea;
      Leb.write_u buf size
  | Block_exec { icount; addr; n } ->
      put_tag st buf tag_block_exec icount;
      Leb.write_s buf (addr - st.s_baddr);
      st.s_baddr <- addr;
      Leb.write_u buf n
  | End { icount } -> put_tag st buf tag_end icount

let get_sp st s pos =
  st.s_sp <- st.s_sp + Leb.read_s s pos;
  st.s_sp

let get_ea st s pos =
  st.s_ea <- st.s_ea + Leb.read_s s pos;
  st.s_ea

let read_u8 s pos =
  if !pos >= String.length s then raise (Leb.Truncated !pos);
  let v = Char.code s.[!pos] in
  incr pos;
  v

let decode st s pos =
  let b = read_u8 s pos in
  let d = b lsr 3 in
  let icount =
    st.s_icount + (if d < icount_escape then d else Leb.read_u s pos)
  in
  st.s_icount <- icount;
  (* integer match so the dispatch compiles to a jump table — decode is the
     replay hot path *)
  match b land 7 with
  | 2 (* tag_load *) ->
      let static = Leb.read_u s pos - 1 in
      let ea = get_ea st s pos in
      let size = Leb.read_u s pos in
      let sp = get_sp st s pos in
      Load { icount; static; ea; size; sp }
  | 3 (* tag_store *) ->
      let static = Leb.read_u s pos - 1 in
      let ea = get_ea st s pos in
      let size = Leb.read_u s pos in
      let sp = get_sp st s pos in
      Store { icount; static; ea; size; sp }
  | 0 (* tag_rtn_entry *) ->
      let routine = Leb.read_u s pos in
      let sp = get_sp st s pos in
      Rtn_entry { icount; routine; sp }
  | 1 (* tag_ret *) ->
      let sp = get_sp st s pos in
      Ret { icount; sp }
  | 4 (* tag_block_copy *) ->
      let static = Leb.read_u s pos - 1 in
      let src = st.s_ea + Leb.read_s s pos in
      let dst = src + Leb.read_s s pos in
      st.s_ea <- dst;
      let len = Leb.read_u s pos in
      let sp = get_sp st s pos in
      Block_copy { icount; static; src; dst; len; sp }
  | 5 (* tag_prefetch *) ->
      let ea = get_ea st s pos in
      let size = Leb.read_u s pos in
      Prefetch { icount; ea; size }
  | 6 (* tag_block_exec *) ->
      st.s_baddr <- st.s_baddr + Leb.read_s s pos;
      let n = Leb.read_u s pos in
      Block_exec { icount; addr = st.s_baddr; n }
  | _ (* tag_end: [b land 7] is exhaustive over the 8 tags *) ->
      End { icount }
