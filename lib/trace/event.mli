(** The event vocabulary of the record-once / replay-many trace subsystem.

    One execution under the {!Probe} produces a stream of these events; every
    analysis tool in the repository (tQUAD, QUAD, gprof-sim, the cache/mix/
    footprint tools) can be driven from the stream — live, as the probe
    synthesizes it, or later from a recorded {!Reader} — with bit-identical
    results, because the events carry exactly the dynamic values the tools'
    analysis routines used to read from the machine:

    - [icount]: the retired-instruction count {e before} the instruction
      executes (the clock every profiler slices time with);
    - [sp]: the stack pointer at analysis time (stack-area classification and
      internal call-stack matching);
    - effective addresses and dynamic byte counts (block copies report the
      run-time [len], predicated accesses are only emitted when their guard
      was true).

    [Block_exec] events record basic-block dispatch (address + instruction
    count); together with the program image they reconstruct the full
    instruction stream for sampling and instruction-mix analyses without
    paying one event per instruction. *)

type t =
  | Rtn_entry of { icount : int; routine : int; sp : int }
      (** control reached a routine's entry instruction ([routine] is the
          {!Tq_vm.Symtab} id) *)
  | Ret of { icount : int; sp : int }
      (** a return instruction, after its own stack read was emitted *)
  | Load of { icount : int; static : int; ea : int; size : int; sp : int }
      (** [static] is the id of the routine containing the instruction, or
          [-1] outside any routine *)
  | Store of { icount : int; static : int; ea : int; size : int; sp : int }
  | Block_copy of {
      icount : int;
      static : int;
      src : int;
      dst : int;
      len : int;  (** dynamic byte count; may be 0 *)
      sp : int;
    }
  | Prefetch of { icount : int; ea : int; size : int }
      (** analysis tools must discard these (the cache model warms on them) *)
  | Block_exec of { icount : int; addr : int; n : int }
      (** a basic block of [n] instructions dispatched at [addr]; all [n]
          retire *)
  | End of { icount : int }  (** final instruction count at halt *)

(** Event kinds, for declaring which events a replay sink consumes (see
    {!Replay.job}) without constructing events. *)
type kind =
  | KRtn_entry
  | KRet
  | KLoad
  | KStore
  | KBlock_copy
  | KPrefetch
  | KBlock_exec
  | KEnd

val all_kinds : kind list

val n_kinds : int

val kind_tag : kind -> int
(** Wire tag of a kind, [0 .. n_kinds - 1]. *)

val tag : t -> int
(** Wire tag of an event; [tag ev = kind_tag (kind of ev)]. *)

val icount : t -> int

val pp : Format.formatter -> t -> unit

(** {2 Numeric fields (v4 repeat chunks)}

    A v4 repeat chunk stores one loop-body iteration plus, per event, the
    evolution of its {e numeric} fields — the values that change between
    iterations.  The canonical per-kind field order is part of the wire
    format (docs/TRACE.md):

    - [Rtn_entry]: icount, sp
    - [Ret]: icount, sp
    - [Load]/[Store]: icount, ea, sp
    - [Block_copy]: icount, src, dst, len, sp
    - [Prefetch]: icount, ea
    - [Block_exec]/[End]: icount

    Everything else ([static], [routine], [size], [addr], [n] and the
    constructor itself) is {e structural}: identical across iterations by
    construction, stored once in the body. *)

val num_fields : t -> int
(** Number of numeric fields of this event's kind. *)

val read_num_fields : t -> int array -> int -> int
(** [read_num_fields ev out off] writes [ev]'s numeric fields into
    [out.(off ..)] in canonical order and returns the next free offset. *)

val with_num_fields : t -> int array -> int -> t
(** [with_num_fields tmpl vals off] rebuilds an event: structure from
    [tmpl], numeric fields from [vals.(off ..)].  Inverse of
    {!read_num_fields}. *)

val struct_same : t -> t -> bool
(** Do the two events agree on constructor and every structural field?  The
    matching predicate of the record-time repetition detector. *)

(** {2 Codec}

    Events are delta-encoded against a running {!state} (instruction counts,
    addresses, stack pointer), each field as ULEB128/SLEB128 — the
    {!Tq_util.Leb128} conventions of {!Tq_vm.Objfile}.  The leading tag byte
    packs the icount delta into its high 5 bits (consecutive events are a
    few instructions apart), falling back to a ULEB delta when it doesn't
    fit.  The state is reset at every chunk boundary so chunks decode
    independently. *)

type state

val fresh_state : ?icount:int -> unit -> state

val encode : state -> Buffer.t -> t -> unit
(** @raise Invalid_argument if [icount] regresses w.r.t. the state. *)

val decode : state -> string -> int ref -> t
(** @raise Tq_util.Leb128.Truncated on short input.  (Every tag-byte value
    decodes as some event; corrupted payloads are caught by the chunk
    length check in {!Reader}.) *)
