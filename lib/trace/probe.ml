module Isa = Tq_isa.Isa
module Engine = Tq_dbi.Engine
module Machine = Tq_vm.Machine
module Symtab = Tq_vm.Symtab

let attach ?block_sink engine sink =
  let m = Engine.machine engine in
  (* [block_sink] lets the recorder route block dispatches through the
     writer's boundary entry point with the engine's compiled-trace id —
     the dictionary key of v4 redundancy suppression; live tools just see
     the event *)
  let bsink =
    match block_sink with
    | Some f -> f
    | None -> fun ~trace_id:_ ev -> sink ev
  in
  Engine.add_trace_instrumenter engine (fun ~id ~addr ~n ->
      [
        (fun () ->
          bsink ~trace_id:id
            (Event.Block_exec { icount = Machine.instr_count m; addr; n }));
      ]);
  Engine.add_rtn_instrumenter engine (fun r ->
      let routine = r.Symtab.id in
      [
        (fun () ->
          sink
            (Event.Rtn_entry
               { icount = Machine.instr_count m; routine; sp = Machine.sp m }));
      ]);
  Engine.add_ins_instrumenter engine (fun view ->
      let ins = Engine.Ins_view.ins view in
      let static =
        match Engine.Ins_view.routine view with
        | Some r -> r.Symtab.id
        | None -> -1
      in
      if Isa.is_prefetch ins then
        [
          (fun () ->
            sink
              (Event.Prefetch
                 {
                   icount = Machine.instr_count m;
                   ea = Machine.read_ea m ins;
                   size = Isa.mem_read_bytes ins;
                 }));
        ]
      else if Isa.is_block_move ins then
        [
          (fun () ->
            sink
              (Event.Block_copy
                 {
                   icount = Machine.instr_count m;
                   static;
                   src = Machine.read_ea m ins;
                   dst = Machine.write_ea m ins;
                   len = Machine.block_len m ins;
                   sp = Machine.sp m;
                 }));
        ]
      else begin
        let rd = Isa.mem_read_bytes ins and wr = Isa.mem_write_bytes ins in
        let actions = ref [] in
        if rd > 0 then
          actions :=
            [
              Engine.predicated engine view (fun () ->
                  sink
                    (Event.Load
                       {
                         icount = Machine.instr_count m;
                         static;
                         ea = Machine.read_ea m ins;
                         size = rd;
                         sp = Machine.sp m;
                       }));
            ];
        if wr > 0 then
          actions :=
            !actions
            @ [
                Engine.predicated engine view (fun () ->
                    sink
                      (Event.Store
                         {
                           icount = Machine.instr_count m;
                           static;
                           ea = Machine.write_ea m ins;
                           size = wr;
                           sp = Machine.sp m;
                         }));
              ];
        if Isa.is_ret ins then
          actions :=
            !actions
            @ [
                (fun () ->
                  sink
                    (Event.Ret
                       { icount = Machine.instr_count m; sp = Machine.sp m }));
              ];
        !actions
      end)

let record ?fuel ?chunk_bytes ?compress engine ~path =
  let fingerprint =
    Tq_vm.Program.fingerprint (Machine.program (Engine.machine engine))
  in
  Writer.with_file ?chunk_bytes ~fingerprint ?compress path (fun w ->
      attach engine (Writer.emit w)
        ~block_sink:(fun ~trace_id ev -> Writer.emit_boundary w ~trace_id ev);
      Engine.run ?fuel engine;
      let m = Engine.machine engine in
      Writer.emit w (Event.End { icount = Machine.instr_count m });
      Writer.events w)
