(** The event-flow probe: a DBI tool that turns one execution into the
    {!Event} stream.

    This is the single place where machine state is sampled for analysis.
    Every profiler's [attach] is now probe + its event sink, and the recorder
    is probe + {!Writer} — which is what makes a replayed analysis
    bit-identical to a live one: both consume the same stream, produced by
    the same instrumentation.

    Emission order mirrors the engine's action order: [Block_exec] at block
    dispatch, then per instruction [Rtn_entry] (at routine entries), the
    memory events, and [Ret] last.  Predicated accesses are emitted only when
    the guard is true ([INS_InsertPredicatedCall] semantics); prefetches
    come out as [Prefetch]; block copies carry their dynamic length. *)

val attach :
  ?block_sink:(trace_id:int -> Event.t -> unit) ->
  Tq_dbi.Engine.t ->
  (Event.t -> unit) ->
  unit
(** Register the probe's instrumentation.  Must be called before the engine
    runs.  Multiple probes (one per live tool) may coexist on one engine;
    each synthesizes its own stream.  [block_sink], when given, receives
    the [Block_exec] events instead of [sink], together with the engine's
    compiled-trace id — the recorder uses it to key the v4 redundancy
    suppressor's dictionary on the code cache's own trace identity
    ({!Writer.emit_boundary}). *)

val record :
  ?fuel:int ->
  ?chunk_bytes:int ->
  ?compress:bool ->
  Tq_dbi.Engine.t ->
  path:string ->
  int
(** Attach a probe streaming to [path], run the engine to halt, append the
    final [End] event and close the file (also on exceptions).  Returns the
    number of events recorded.  [compress] (default [false]) records a v4
    redundancy-suppressed container (see {!Writer}); the decoded event
    stream — and therefore every replayed report — is identical either way.
    The recording streams to ["path.tmp"] and is atomically renamed to
    [path] when finalized; a recorder killed mid-run therefore leaves a
    [.tmp] file that {!Reader.load}[ ~mode:Salvage] can recover chunk by
    chunk.  @raise Tq_vm.Executor.Out_of_fuel (and anything [Engine.run]
    raises) after closing the partial file. *)
