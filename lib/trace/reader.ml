module Leb = Tq_util.Leb128
module Crc32 = Tq_util.Crc32

exception Format_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Format_error s)) fmt

type chunk = { c_offset : int; c_first_icount : int; c_events : int }

type mode = Strict | Salvage

type salvage = {
  salvaged_chunks : int;
  dropped_chunks : int;
  dropped_bytes : int;
  reason : string;
}

type t = {
  raw : string;
  v3 : bool;
  verify : bool;
  chunks : chunk array;
  verified : bool array;
      (* verified.(i): chunk i's CRC has already matched once in this
         process, so later passes skip the digest.  Plain [bool array], not a
         bitmap: concurrent replay domains store [true] without a
         read-modify-write, so the worst a race can do is re-verify a chunk,
         never un-verify one. *)
  n_events : int;
  last_icount : int;
  fingerprint : int64;
  salvage : salvage option;
}

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let leb_u s pos =
  try Leb.read_u s pos with Leb.Truncated p -> fail "truncated LEB128 at %d" p

let le32 raw pos =
  if !pos + 4 > String.length raw then fail "truncated CRC at %d" !pos;
  let v =
    Char.code raw.[!pos]
    lor (Char.code raw.[!pos + 1] lsl 8)
    lor (Char.code raw.[!pos + 2] lsl 16)
    lor (Char.code raw.[!pos + 3] lsl 24)
  in
  pos := !pos + 4;
  v

let le64 raw pos =
  let v = ref 0L in
  for i = 7 downto 0 do
    v := Int64.logor (Int64.shift_left !v 8) (Int64.of_int (Char.code raw.[pos + i]))
  done;
  !v

(* Parse a v3 chunk's fixed part at [offset]: magic byte, the three
   self-delimiting header fields, the stored CRC.  Returns the header fields,
   the CRC, the [meta] slice the CRC covers (header fields), the payload
   bounds and the chunk's end offset.  Raises [Format_error] on anything
   malformed — the strict path's vocabulary. *)
let parse_chunk_v3 raw offset =
  let len = String.length raw in
  if offset >= len || raw.[offset] <> Writer.chunk_magic then
    fail "chunk at %d: bad chunk magic" offset;
  let pos = ref (offset + 1) in
  let meta_start = !pos in
  let n = leb_u raw pos in
  let first_icount = leb_u raw pos in
  let payload_len = leb_u raw pos in
  let meta_len = !pos - meta_start in
  if n < 0 || first_icount < 0 || payload_len < 0 then
    fail "chunk at %d: negative header field" offset;
  let crc = le32 raw pos in
  let payload_start = !pos in
  if payload_len > len - payload_start then fail "chunk at %d overruns file" offset;
  (n, first_icount, payload_len, crc, meta_start, meta_len, payload_start)

let check_crc_v3 raw offset (_, _, payload_len, crc, meta_start, meta_len, payload_start) =
  let computed = Crc32.digest ~pos:meta_start ~len:meta_len raw in
  let computed = Crc32.digest ~crc:computed ~pos:payload_start ~len:payload_len raw in
  if computed <> crc then
    fail "chunk at %d: CRC mismatch (stored %08x, computed %08x)" offset crc
      computed

(* Decode one chunk's events starting at its header offset.  For v3 the
   chunk's CRC is verified (unless the reader was loaded with
   [~verify:false]) before any event is decoded, so a corrupt payload
   surfaces as [Format_error], never as garbage events.  [verified] carries
   the per-chunk already-verified bits ([idx] indexes it): a chunk whose bit
   is set skips the digest, and a chunk that verifies here sets its bit, so
   each chunk pays the CRC at most once per process no matter how many
   replay passes or domains walk the trace. *)
let iter_chunk ~v3 ~verify ~verified ~idx raw chunk sink =
  let n, first_icount, payload_len, payload_start =
    if v3 then begin
      let ((n, fic, plen, _, _, _, pstart) as parts) =
        parse_chunk_v3 raw chunk.c_offset
      in
      if n <> chunk.c_events || fic <> chunk.c_first_icount then
        fail "chunk at %d: header disagrees with index" chunk.c_offset;
      if verify && not verified.(idx) then begin
        check_crc_v3 raw chunk.c_offset parts;
        verified.(idx) <- true
      end;
      (n, fic, plen, pstart)
    end
    else begin
      let pos = ref chunk.c_offset in
      let n = leb_u raw pos in
      let first_icount = leb_u raw pos in
      let payload_len = leb_u raw pos in
      if n < 0 || payload_len < 0 then
        fail "chunk at %d: negative header field" chunk.c_offset;
      (n, first_icount, payload_len, !pos)
    end
  in
  let payload_end = payload_start + payload_len in
  if payload_end > String.length raw then
    fail "chunk at %d overruns file" chunk.c_offset;
  let pos = ref payload_start in
  let st = Event.fresh_state ~icount:first_icount () in
  (* only decode failures are container corruption; an exception raised by
     the sink itself (a replayed tool crashing) must pass through untouched
     so replay supervision can attribute it to the tool, not the trace *)
  for _ = 1 to n do
    match Event.decode st raw pos with
    | ev -> sink ev
    | exception Leb.Truncated p -> fail "truncated event at %d" p
    | exception Failure msg -> fail "%s" msg
  done;
  if !pos <> payload_end then
    fail "chunk at %d: payload length mismatch" chunk.c_offset

(* ---------- strict load ---------- *)

let parse_index raw ~v3 ~hlen ~index_offset =
  let len = String.length raw in
  let pos = ref index_offset in
  let n_chunks = leb_u raw pos in
  (* a corrupted count must fail cleanly, not OOM in Array.init: every chunk
     costs at least 5 bytes on disk *)
  if n_chunks < 0 || n_chunks > len then fail "chunk count %d out of range" n_chunks;
  let off = ref 0 and ic = ref 0 in
  let chunks =
    Array.init n_chunks (fun _ ->
        off := !off + leb_u raw pos;
        ic := !ic + leb_u raw pos;
        let c_events = leb_u raw pos in
        if !off < hlen || !off >= index_offset then
          fail "chunk offset %d out of range" !off;
        { c_offset = !off; c_first_icount = !ic; c_events })
  in
  if v3 then begin
    (* the chunks listed by the index must exactly tile the chunk region —
       a tampered index cannot silently select, duplicate or skip chunks *)
    let expect = ref hlen in
    Array.iter
      (fun c ->
        if c.c_offset <> !expect then
          fail "index does not tile the chunk region (chunk at %d, expected %d)"
            c.c_offset !expect;
        let n, fic, plen, _, _, _, pstart = parse_chunk_v3 raw c.c_offset in
        if n <> c.c_events || fic <> c.c_first_icount then
          fail "chunk at %d: header disagrees with index" c.c_offset;
        expect := pstart + plen)
      chunks;
    if !expect <> index_offset then
      fail "chunk region ends at %d but index starts at %d" !expect index_offset
  end;
  chunks

let of_raw ~verify raw =
  let mlen = String.length Writer.magic in
  if String.length raw < mlen then fail "bad magic (file shorter than a header)";
  let v3 =
    match String.sub raw 0 mlen with
    | m when m = Writer.magic -> true
    | m when m = Writer.magic_v2 -> false
    | _ -> fail "bad magic (not a tquad trace, or an unknown container version)"
  in
  let hlen = Writer.header_bytes in
  let tlen = String.length Writer.trailer_magic in
  let len = String.length raw in
  if len < hlen + 8 + tlen
     || String.sub raw (len - tlen) tlen <> Writer.trailer_magic
  then fail "bad trailer (truncated recording? try salvage)";
  let fingerprint = le64 raw mlen in
  let index_offset =
    let v = ref 0 in
    for i = 7 downto 0 do
      v := (!v lsl 8) lor Char.code raw.[len - tlen - 8 + i]
    done;
    !v
  in
  if index_offset < hlen || index_offset > len - tlen - 8 then
    fail "index offset %d out of range" index_offset;
  let chunks = parse_index raw ~v3 ~hlen ~index_offset in
  let n_chunks = Array.length chunks in
  let verified = Array.make n_chunks false in
  let n_events = Array.fold_left (fun acc c -> acc + c.c_events) 0 chunks in
  let last_icount = ref 0 in
  if n_chunks > 0 then
    iter_chunk ~v3 ~verify ~verified ~idx:(n_chunks - 1) raw
      chunks.(n_chunks - 1)
      (fun ev -> last_icount := Event.icount ev);
  {
    raw;
    v3;
    verify;
    chunks;
    verified;
    n_events;
    last_icount = !last_icount;
    fingerprint;
    salvage = None;
  }

(* ---------- salvage load ---------- *)

(* CRC-verify a candidate chunk at [offset]; [None] if anything about it is
   implausible.  A verifying chunk is, with probability 1 - 2^-32, a chunk
   the writer actually flushed. *)
let try_chunk raw offset =
  match parse_chunk_v3 raw offset with
  | (n, fic, plen, _, _, _, pstart) as parts ->
      if n < 1 || plen < 1 then None
      else begin
        match check_crc_v3 raw offset parts with
        | () -> Some ({ c_offset = offset; c_first_icount = fic; c_events = n }, pstart + plen)
        | exception Format_error _ -> None
      end
  | exception Format_error _ -> None

(* Does the byte range [gap_start, len) hold exactly the index + trailer of
   an intact container?  Then the trailing "gap" of a clean forward scan is
   structure, not damage. *)
let tail_is_index raw gap_start =
  let tlen = String.length Writer.trailer_magic in
  let len = String.length raw in
  len - gap_start >= 8 + tlen
  && String.sub raw (len - tlen) tlen = Writer.trailer_magic
  && (let v = ref 0 in
      for i = 7 downto 0 do
        v := (!v lsl 8) lor Char.code raw.[len - tlen - 8 + i]
      done;
      !v = gap_start)

let salvage_scan raw =
  let len = String.length raw in
  let hlen = Writer.header_bytes in
  let chunks = ref [] in
  let n_chunks = ref 0 in
  let dropped_chunks = ref 0 and dropped_bytes = ref 0 in
  let last_span = ref None in  (* (offset, end) of the last accepted chunk *)
  let gap_start = ref (-1) in
  let intact_tail = ref false in
  let note_gap upto =
    if !gap_start >= 0 then begin
      incr dropped_chunks;
      dropped_bytes := !dropped_bytes + (upto - !gap_start);
      gap_start := -1
    end
  in
  let pos = ref hlen in
  while !pos < len do
    match try_chunk raw !pos with
    | Some (c, cend) ->
        note_gap !pos;
        (* a duplicated chunk is byte-identical to its predecessor; dropping
           the copy keeps the salvaged events a subsequence of the original *)
        let dup =
          match !last_span with
          | Some (poff, pend) ->
              cend - !pos = pend - poff
              && String.sub raw poff (pend - poff) = String.sub raw !pos (cend - !pos)
          | None -> false
        in
        if not dup then begin
          chunks := c :: !chunks;
          incr n_chunks
        end;
        last_span := Some (!pos, cend);
        pos := cend
    | None ->
        (* resync: skip forward one byte at a time until the next verifying
           chunk; everything skipped is one dropped region *)
        if !gap_start < 0 then gap_start := !pos;
        incr pos
  done;
  if !gap_start >= 0 && tail_is_index raw !gap_start then begin
    intact_tail := true;
    gap_start := -1
  end;
  note_gap len;
  let reason =
    if !dropped_chunks = 0 then
      if !intact_tail then "all chunks verified; container intact"
      else
        "all chunks verified; trailer/index missing (recording not \
         finalized?)"
    else
      Printf.sprintf
        "%d corrupt region(s) totalling %d byte(s) skipped by the forward scan"
        !dropped_chunks !dropped_bytes
  in
  ( Array.of_list (List.rev !chunks),
    {
      salvaged_chunks = !n_chunks;
      dropped_chunks = !dropped_chunks;
      dropped_bytes = !dropped_bytes;
      reason;
    } )

let of_raw_salvage ~verify raw =
  let mlen = String.length Writer.magic in
  if String.length raw < mlen then fail "bad magic (file shorter than a header)";
  (match String.sub raw 0 mlen with
  | m when m = Writer.magic -> ()
  | m when m = Writer.magic_v2 ->
      fail "salvage needs a v3 container (v2 chunks carry no checksums)"
  | _ -> fail "bad magic (not a tquad trace, or an unknown container version)");
  if String.length raw < Writer.header_bytes then fail "truncated header";
  let fingerprint = le64 raw mlen in
  let chunks, info = salvage_scan raw in
  let n_chunks = Array.length chunks in
  (* the forward scan only kept CRC-verified chunks, so they are all born
     verified *)
  let verified = Array.make n_chunks true in
  let n_events = Array.fold_left (fun acc c -> acc + c.c_events) 0 chunks in
  let last_icount = ref 0 in
  if n_chunks > 0 then
    iter_chunk ~v3:true ~verify:true ~verified ~idx:(n_chunks - 1) raw
      chunks.(n_chunks - 1)
      (fun ev -> last_icount := Event.icount ev);
  {
    raw;
    v3 = true;
    verify;
    chunks;
    verified;
    n_events;
    last_icount = !last_icount;
    fingerprint;
    salvage = Some info;
  }

let of_string ?(verify = true) ?(mode = Strict) raw =
  match mode with
  | Strict -> of_raw ~verify raw
  | Salvage -> of_raw_salvage ~verify raw

let load ?verify ?mode path = of_string ?verify ?mode (read_file path)

(* Same loop as [iter_chunk], dispatching on the event's tag instead of
   through one composite sink: the replay driver keeps one fused sink per
   tag, and routing here saves a closure hop per event. *)
let iter_chunk_tags ~v3 ~verify ~verified ~idx raw chunk
    (per_tag : (Event.t -> unit) array) =
  let n, first_icount, payload_len, payload_start =
    if v3 then begin
      let ((n, fic, plen, _, _, _, pstart) as parts) =
        parse_chunk_v3 raw chunk.c_offset
      in
      if n <> chunk.c_events || fic <> chunk.c_first_icount then
        fail "chunk at %d: header disagrees with index" chunk.c_offset;
      if verify && not verified.(idx) then begin
        check_crc_v3 raw chunk.c_offset parts;
        verified.(idx) <- true
      end;
      (n, fic, plen, pstart)
    end
    else begin
      let pos = ref chunk.c_offset in
      let n = leb_u raw pos in
      let first_icount = leb_u raw pos in
      let payload_len = leb_u raw pos in
      if n < 0 || payload_len < 0 then
        fail "chunk at %d: negative header field" chunk.c_offset;
      (n, first_icount, payload_len, !pos)
    end
  in
  let payload_end = payload_start + payload_len in
  if payload_end > String.length raw then
    fail "chunk at %d overruns file" chunk.c_offset;
  let pos = ref payload_start in
  let st = Event.fresh_state ~icount:first_icount () in
  for _ = 1 to n do
    match Event.decode st raw pos with
    | ev -> per_tag.(Event.tag ev) ev
    | exception Leb.Truncated p -> fail "truncated event at %d" p
    | exception Failure msg -> fail "%s" msg
  done;
  if !pos <> payload_end then
    fail "chunk at %d: payload length mismatch" chunk.c_offset

let iter_tags t per_tag =
  if Array.length per_tag <> Event.n_kinds then
    invalid_arg "Trace.Reader.iter_tags: need one sink per event kind";
  Array.iteri
    (fun idx c ->
      iter_chunk_tags ~v3:t.v3 ~verify:t.verify ~verified:t.verified ~idx t.raw
        c per_tag)
    t.chunks

let iter ?from_icount t sink =
  let start =
    match from_icount with
    | None -> 0
    | Some target ->
        (* last chunk whose first_icount <= target; events are icount-sorted
           across chunks, so earlier chunks hold nothing >= target that this
           chunk misses *)
        let lo = ref 0 and hi = ref (Array.length t.chunks - 1) in
        let best = ref 0 in
        while !lo <= !hi do
          let mid = (!lo + !hi) / 2 in
          if t.chunks.(mid).c_first_icount <= target then begin
            best := mid;
            lo := mid + 1
          end
          else hi := mid - 1
        done;
        !best
  in
  let sink =
    match from_icount with
    | None -> sink
    | Some target -> fun ev -> if Event.icount ev >= target then sink ev
  in
  for i = start to Array.length t.chunks - 1 do
    iter_chunk ~v3:t.v3 ~verify:t.verify ~verified:t.verified ~idx:i t.raw
      t.chunks.(i) sink
  done

let crc_check t =
  if not t.v3 then 0 (* v2 carries no checksums *)
  else begin
    Array.iteri
      (fun idx chunk ->
        if not t.verified.(idx) then begin
          check_crc_v3 t.raw chunk.c_offset
            (parse_chunk_v3 t.raw chunk.c_offset);
          t.verified.(idx) <- true
        end)
      t.chunks;
    Array.length t.chunks
  end

let verified_chunks t =
  Array.fold_left (fun acc v -> if v then acc + 1 else acc) 0 t.verified

(* Decode one chunk into an array — the serve layer's chunk cache entry.
   The chunk is CRC-verified first (at most once per process, via the
   verified bit all other passes share), so a cached entry is always a
   decoded-and-verified chunk. *)
let chunk_events t idx =
  if idx < 0 || idx >= Array.length t.chunks then
    invalid_arg "Trace.Reader.chunk_events: chunk index out of range";
  let c = t.chunks.(idx) in
  let out = Array.make c.c_events (Event.End { icount = 0 }) in
  let k = ref 0 in
  iter_chunk ~v3:t.v3 ~verify:t.verify ~verified:t.verified ~idx t.raw c
    (fun ev ->
      (* v2 indexes are not cross-checked against chunk headers at load
         time, so a lying v2 index must surface as Format_error here, not
         as an array bounds crash *)
      if !k >= c.c_events then
        fail "chunk at %d: more events than the index records" c.c_offset;
      out.(!k) <- ev;
      incr k);
  out

let chunk_event_count t idx =
  if idx < 0 || idx >= Array.length t.chunks then
    invalid_arg "Trace.Reader.chunk_event_count: chunk index out of range";
  t.chunks.(idx).c_events

let fingerprint t = t.fingerprint
let n_events t = t.n_events
let n_chunks t = Array.length t.chunks
let last_icount t = t.last_icount
let byte_size t = String.length t.raw
let version t = if t.v3 then 3 else 2
let salvage_info t = t.salvage
