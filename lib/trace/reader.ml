module Leb = Tq_util.Leb128

exception Format_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Format_error s)) fmt

type chunk = { c_offset : int; c_first_icount : int; c_events : int }

type t = {
  raw : string;
  chunks : chunk array;
  n_events : int;
  last_icount : int;
  fingerprint : int64;
}

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let leb_u s pos =
  try Leb.read_u s pos with Leb.Truncated p -> fail "truncated LEB128 at %d" p

(* Decode one chunk's events starting at its header offset. *)
let iter_chunk raw chunk sink =
  let pos = ref chunk.c_offset in
  let n = leb_u raw pos in
  let first_icount = leb_u raw pos in
  let payload_len = leb_u raw pos in
  let payload_end = !pos + payload_len in
  if payload_end > String.length raw then fail "chunk at %d overruns file" chunk.c_offset;
  let st = Event.fresh_state ~icount:first_icount () in
  (* the handler sits outside the loop: installing it per event costs real
     time over millions of events *)
  (try
     for _ = 1 to n do
       sink (Event.decode st raw pos)
     done
   with
  | Leb.Truncated p -> fail "truncated event at %d" p
  | Failure msg -> fail "%s" msg);
  if !pos <> payload_end then
    fail "chunk at %d: payload length mismatch" chunk.c_offset

let le64 raw pos =
  let v = ref 0L in
  for i = 7 downto 0 do
    v := Int64.logor (Int64.shift_left !v 8) (Int64.of_int (Char.code raw.[pos + i]))
  done;
  !v

let load path =
  let raw = read_file path in
  let mlen = String.length Writer.magic in
  if String.length raw < mlen || String.sub raw 0 mlen <> Writer.magic then
    fail "bad magic (not a tquad trace, or an old container version)";
  let hlen = Writer.header_bytes in
  let tlen = String.length Writer.trailer_magic in
  let len = String.length raw in
  if len < hlen + 8 + tlen
     || String.sub raw (len - tlen) tlen <> Writer.trailer_magic
  then fail "bad trailer (truncated recording?)";
  let fingerprint = le64 raw mlen in
  let index_offset =
    let v = ref 0 in
    for i = 7 downto 0 do
      v := (!v lsl 8) lor Char.code raw.[len - tlen - 8 + i]
    done;
    !v
  in
  if index_offset < hlen || index_offset > len - tlen - 8 then
    fail "index offset %d out of range" index_offset;
  let pos = ref index_offset in
  let n_chunks = leb_u raw pos in
  if n_chunks < 0 then fail "negative chunk count";
  let off = ref 0 and ic = ref 0 in
  let chunks =
    Array.init n_chunks (fun _ ->
        off := !off + leb_u raw pos;
        ic := !ic + leb_u raw pos;
        let c_events = leb_u raw pos in
        if !off < hlen || !off >= index_offset then
          fail "chunk offset %d out of range" !off;
        { c_offset = !off; c_first_icount = !ic; c_events })
  in
  let n_events = Array.fold_left (fun acc c -> acc + c.c_events) 0 chunks in
  let last_icount = ref 0 in
  if n_chunks > 0 then
    iter_chunk raw chunks.(n_chunks - 1) (fun ev ->
        last_icount := Event.icount ev);
  { raw; chunks; n_events; last_icount = !last_icount; fingerprint }

(* Same loop as [iter_chunk], dispatching on the event's tag instead of
   through one composite sink: the replay driver keeps one fused sink per
   tag, and routing here saves a closure hop per event. *)
let iter_chunk_tags raw chunk (per_tag : (Event.t -> unit) array) =
  let pos = ref chunk.c_offset in
  let n = leb_u raw pos in
  let first_icount = leb_u raw pos in
  let payload_len = leb_u raw pos in
  let payload_end = !pos + payload_len in
  if payload_end > String.length raw then fail "chunk at %d overruns file" chunk.c_offset;
  let st = Event.fresh_state ~icount:first_icount () in
  (try
     for _ = 1 to n do
       let ev = Event.decode st raw pos in
       per_tag.(Event.tag ev) ev
     done
   with
  | Leb.Truncated p -> fail "truncated event at %d" p
  | Failure msg -> fail "%s" msg);
  if !pos <> payload_end then
    fail "chunk at %d: payload length mismatch" chunk.c_offset

let iter_tags t per_tag =
  if Array.length per_tag <> Event.n_kinds then
    invalid_arg "Trace.Reader.iter_tags: need one sink per event kind";
  Array.iter (fun c -> iter_chunk_tags t.raw c per_tag) t.chunks

let iter ?from_icount t sink =
  let start =
    match from_icount with
    | None -> 0
    | Some target ->
        (* last chunk whose first_icount <= target; events are icount-sorted
           across chunks, so earlier chunks hold nothing >= target that this
           chunk misses *)
        let lo = ref 0 and hi = ref (Array.length t.chunks - 1) in
        let best = ref 0 in
        while !lo <= !hi do
          let mid = (!lo + !hi) / 2 in
          if t.chunks.(mid).c_first_icount <= target then begin
            best := mid;
            lo := mid + 1
          end
          else hi := mid - 1
        done;
        !best
  in
  let sink =
    match from_icount with
    | None -> sink
    | Some target -> fun ev -> if Event.icount ev >= target then sink ev
  in
  for i = start to Array.length t.chunks - 1 do
    iter_chunk t.raw t.chunks.(i) sink
  done

let fingerprint t = t.fingerprint
let n_events t = t.n_events
let n_chunks t = Array.length t.chunks
let last_icount t = t.last_icount
let byte_size t = String.length t.raw
