module Leb = Tq_util.Leb128
module Crc32 = Tq_util.Crc32

exception Format_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Format_error s)) fmt

type ckind = Plain | Repeat | Body

type chunk = {
  c_offset : int;
  c_first_icount : int;
  c_events : int;  (* raw (decoded) events — what the index records *)
  c_kind : ckind;
  c_stored : int;
      (* physically encoded events: = c_events for plain, the body length
         for a body-def, 0 for a repeat (its body is stored in the def) *)
}

type mode = Strict | Salvage

type salvage = {
  salvaged_chunks : int;
  dropped_chunks : int;
  dropped_bytes : int;
  reason : string;
}

type t = {
  raw : string;
  version : int;  (* 2, 3 or 4 *)
  verify : bool;
  chunks : chunk array;
  verified : bool array;
      (* verified.(i): chunk i's CRC has already matched once in this
         process, so later passes skip the digest.  Plain [bool array], not a
         bitmap: concurrent replay domains store [true] without a
         read-modify-write, so the worst a race can do is re-verify a chunk,
         never un-verify one. *)
  n_events : int;
  last_icount : int;
  fingerprint : int64;
  salvage : salvage option;
}

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let leb_u s pos =
  try Leb.read_u s pos with Leb.Truncated p -> fail "truncated LEB128 at %d" p

let leb_s s pos =
  try Leb.read_s s pos with Leb.Truncated p -> fail "truncated LEB128 at %d" p

let le32 raw pos =
  if !pos + 4 > String.length raw then fail "truncated CRC at %d" !pos;
  let v =
    Char.code raw.[!pos]
    lor (Char.code raw.[!pos + 1] lsl 8)
    lor (Char.code raw.[!pos + 2] lsl 16)
    lor (Char.code raw.[!pos + 3] lsl 24)
  in
  pos := !pos + 4;
  v

let le64 raw pos =
  let v = ref 0L in
  for i = 7 downto 0 do
    v := Int64.logor (Int64.shift_left !v 8) (Int64.of_int (Char.code raw.[pos + i]))
  done;
  !v

(* Parse a v3/v4 chunk's fixed part at [offset]: kind byte, the three
   self-delimiting header fields, the stored CRC.  Returns the kind, the
   header fields, the CRC, the [meta] slice the CRC covers (header fields),
   the payload bounds.  [v4] admits the repeat- and body-def-chunk kind
   bytes.  Raises [Format_error] on anything malformed — the strict path's
   vocabulary. *)
let parse_chunk ~v4 raw offset =
  let len = String.length raw in
  if offset >= len then fail "chunk at %d: bad chunk magic" offset;
  let kind =
    if raw.[offset] = Writer.chunk_magic then Plain
    else if v4 && raw.[offset] = Writer.repeat_magic then Repeat
    else if v4 && raw.[offset] = Writer.body_magic then Body
    else fail "chunk at %d: bad chunk magic" offset
  in
  let pos = ref (offset + 1) in
  let meta_start = !pos in
  let n = leb_u raw pos in
  let first_icount = leb_u raw pos in
  let payload_len = leb_u raw pos in
  let meta_len = !pos - meta_start in
  if n < 0 || first_icount < 0 || payload_len < 0 then
    fail "chunk at %d: negative header field" offset;
  let crc = le32 raw pos in
  let payload_start = !pos in
  if payload_len > len - payload_start then fail "chunk at %d overruns file" offset;
  (kind, n, first_icount, payload_len, crc, meta_start, meta_len, payload_start)

(* v4 chunk CRCs cover the kind byte too (a flipped kind must not verify as
   a chunk of the other kind); v3 CRCs start at the header fields. *)
let check_crc ~v4 raw offset
    (_, _, _, payload_len, crc, meta_start, meta_len, payload_start) =
  let computed = if v4 then Crc32.digest ~pos:offset ~len:1 raw else 0 in
  let computed = Crc32.digest ~crc:computed ~pos:meta_start ~len:meta_len raw in
  let computed = Crc32.digest ~crc:computed ~pos:payload_start ~len:payload_len raw in
  if computed <> crc then
    fail "chunk at %d: CRC mismatch (stored %08x, computed %08x)" offset crc
      computed

(* Peek a repeat chunk's fixed fields at the head of its payload — body
   event count, iteration count, body-def reference (the def chunk's file
   offset) and the def's payload CRC — validating the counts against the
   header's raw count.  A reference must point strictly backwards: the
   writer always emits a def before any repeat that uses it. *)
let repeat_meta raw ~offset ~n ~payload_len ~payload_start =
  let pos = ref payload_start in
  let b = leb_u raw pos in
  let iters = leb_u raw pos in
  let bref = leb_u raw pos in
  let bcrc = leb_u raw pos in
  if b < 1 || iters < 1 || b * iters <> n then
    fail "chunk at %d: inconsistent repeat counts (%d x %d <> %d)" offset b
      iters n;
  if !pos - payload_start > payload_len then
    fail "chunk at %d: truncated repeat header" offset;
  if bref >= offset then fail "chunk at %d: forward body reference %d" offset bref;
  (b, iters, bref, bcrc, !pos)

(* Peek a body-def chunk's event count at the head of its payload.  Every
   encoded event costs at least one byte, so a count exceeding the payload
   length is corrupt. *)
let body_meta raw ~offset ~payload_len ~payload_start =
  let pos = ref payload_start in
  let b = leb_u raw pos in
  if b < 1 || b > payload_len then
    fail "chunk at %d: inconsistent body-def event count %d" offset b;
  (b, !pos)

(* Binary search the (offset-sorted) chunk table for the chunk starting at
   exactly [off]. *)
let find_chunk_at chunks off =
  let lo = ref 0 and hi = ref (Array.length chunks - 1) in
  let found = ref (-1) in
  while !found < 0 && !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    let c = chunks.(mid) in
    if c.c_offset = off then found := mid
    else if c.c_offset < off then lo := mid + 1
    else hi := mid - 1
  done;
  if !found >= 0 then Some !found else None

let read_u8 raw pos limit =
  if !pos >= limit then fail "truncated field table at %d" !pos;
  let v = Char.code raw.[!pos] in
  incr pos;
  v

(* Decode one repeat chunk and expand it to its [n] raw events: the body
   decodes once from the body-def chunk it references (re-seeded at this
   repeat's [first_icount] — the def's blob is icount-relative precisely so
   many repeats can share it), then each further iteration is reconstructed
   by advancing the numeric fields — one add per field for affine strides, a
   pre-decoded literal delta otherwise.  This is the replay-speedup path:
   iterations 1..N-1 pay no varint decoding for affine fields (the common
   case).  The reference was cross-checked against the def's payload CRC at
   load (strict) or scan (salvage) time; here only structural bounds are
   re-validated. *)
let iter_repeat ~verify ~verified ~chunks raw ~offset ~n ~first_icount
    ~payload_len ~payload_start sink =
  let payload_end = payload_start + payload_len in
  let b, iters, bref, _bcrc, tables_start =
    repeat_meta raw ~offset ~n ~payload_len ~payload_start
  in
  let def_idx =
    match find_chunk_at chunks bref with
    | Some i when chunks.(i).c_kind = Body -> i
    | _ -> fail "chunk at %d: dangling body reference %d" offset bref
  in
  let _, _, _, dplen, _, _, _, dpstart = parse_chunk ~v4:true raw bref in
  if verify && not verified.(def_idx) then begin
    check_crc ~v4:true raw bref (parse_chunk ~v4:true raw bref);
    verified.(def_idx) <- true
  end;
  let dpos = ref dpstart in
  let db = leb_u raw dpos in
  if db <> b then
    fail "chunk at %d: body length disagrees with its def at %d" offset bref;
  let dend = dpstart + dplen in
  let st = Event.fresh_state ~icount:first_icount () in
  let body = Array.make b (Event.End { icount = 0 }) in
  for k = 0 to b - 1 do
    match Event.decode st raw dpos with
    | ev -> body.(k) <- ev
    | exception Leb.Truncated p -> fail "truncated event at %d" p
    | exception Failure msg -> fail "%s" msg
  done;
  if !dpos <> dend then fail "chunk at %d: body overruns its def" bref;
  let pos = ref tables_start in
  let foff = Array.make (b + 1) 0 in
  for k = 0 to b - 1 do
    foff.(k + 1) <- foff.(k) + Event.num_fields body.(k)
  done;
  let nf = foff.(b) in
  let vals = Array.make (max nf 1) 0 in
  for k = 0 to b - 1 do
    ignore (Event.read_num_fields body.(k) vals foff.(k))
  done;
  let literal = Array.make (max nf 1) false in
  let stride = Array.make (max nf 1) 0 in
  let lits = Array.make (max nf 1) [||] in
  (* literal-mode bitmap: ceil(nf/8) bytes, bit f set = field f literal *)
  for f = 0 to nf - 1 do
    if f mod 8 = 0 then begin
      let byte = read_u8 raw pos payload_end in
      for bit = 0 to min 7 (nf - 1 - f) do
        literal.(f + bit) <- byte land (1 lsl bit) <> 0
      done
    end
  done;
  for f = 0 to nf - 1 do
    if literal.(f) then begin
      (* each literal delta costs at least one byte, so a valid table
         cannot claim more iterations than the payload holds *)
      if iters - 1 > payload_len then
        fail "chunk at %d: literal table overruns payload" offset;
      let a = Array.make (max (iters - 1) 1) 0 in
      for i = 0 to iters - 2 do
        a.(i) <- leb_s raw pos
      done;
      lits.(f) <- a
    end
    else stride.(f) <- leb_s raw pos
  done;
  if !pos <> payload_end then
    fail "chunk at %d: payload length mismatch" offset;
  (* iteration 0: the body itself *)
  for k = 0 to b - 1 do
    sink body.(k)
  done;
  for i = 1 to iters - 1 do
    for k = 0 to b - 1 do
      let lo = foff.(k) in
      let hi = foff.(k + 1) in
      for f = lo to hi - 1 do
        vals.(f) <-
          vals.(f)
          + (if literal.(f) then lits.(f).(i - 1) else stride.(f))
      done;
      sink (Event.with_num_fields body.(k) vals lo)
    done
  done

(* Decode one chunk's events starting at its header offset.  For v3/v4 the
   chunk's CRC is verified (unless the reader was loaded with
   [~verify:false]) before any event is decoded, so a corrupt payload
   surfaces as [Format_error], never as garbage events.  [verified] carries
   the per-chunk already-verified bits ([idx] indexes it): a chunk whose bit
   is set skips the digest, and a chunk that verifies here sets its bit, so
   each chunk pays the CRC at most once per process no matter how many
   replay passes or domains walk the trace. *)
let iter_chunk ~version ~verify ~verified ~chunks ~idx raw chunk sink =
  if version >= 3 then begin
    let v4 = version = 4 in
    let ((kind, n, fic, plen, _, _, _, pstart) as parts) =
      parse_chunk ~v4 raw chunk.c_offset
    in
    if n <> chunk.c_events || fic <> chunk.c_first_icount then
      fail "chunk at %d: header disagrees with index" chunk.c_offset;
    if verify && not verified.(idx) then begin
      check_crc ~v4 raw chunk.c_offset parts;
      verified.(idx) <- true
    end;
    match kind with
    | Body -> ()  (* referenced storage, not stream events *)
    | Repeat ->
        iter_repeat ~verify ~verified ~chunks raw ~offset:chunk.c_offset ~n
          ~first_icount:fic ~payload_len:plen ~payload_start:pstart sink
    | Plain ->
        let payload_end = pstart + plen in
        let pos = ref pstart in
        let st = Event.fresh_state ~icount:fic () in
        (* only decode failures are container corruption; an exception
           raised by the sink itself (a replayed tool crashing) must pass
           through untouched so replay supervision can attribute it to the
           tool, not the trace *)
        for _ = 1 to n do
          match Event.decode st raw pos with
          | ev -> sink ev
          | exception Leb.Truncated p -> fail "truncated event at %d" p
          | exception Failure msg -> fail "%s" msg
        done;
        if !pos <> payload_end then
          fail "chunk at %d: payload length mismatch" chunk.c_offset
  end
  else begin
    let pos = ref chunk.c_offset in
    let n = leb_u raw pos in
    let first_icount = leb_u raw pos in
    let payload_len = leb_u raw pos in
    if n < 0 || payload_len < 0 then
      fail "chunk at %d: negative header field" chunk.c_offset;
    let payload_start = !pos in
    let payload_end = payload_start + payload_len in
    if payload_end > String.length raw then
      fail "chunk at %d overruns file" chunk.c_offset;
    let st = Event.fresh_state ~icount:first_icount () in
    for _ = 1 to n do
      match Event.decode st raw pos with
      | ev -> sink ev
      | exception Leb.Truncated p -> fail "truncated event at %d" p
      | exception Failure msg -> fail "%s" msg
    done;
    if !pos <> payload_end then
      fail "chunk at %d: payload length mismatch" chunk.c_offset
  end

(* ---------- strict load ---------- *)

let parse_index raw ~version ~hlen ~index_offset =
  let len = String.length raw in
  let pos = ref index_offset in
  let n_chunks = leb_u raw pos in
  (* a corrupted count must fail cleanly, not OOM in Array.init: every chunk
     costs at least 5 bytes on disk *)
  if n_chunks < 0 || n_chunks > len then fail "chunk count %d out of range" n_chunks;
  let off = ref 0 and ic = ref 0 in
  let chunks =
    Array.init n_chunks (fun _ ->
        off := !off + leb_u raw pos;
        ic := !ic + leb_u raw pos;
        let c_events = leb_u raw pos in
        if !off < hlen || !off >= index_offset then
          fail "chunk offset %d out of range" !off;
        {
          c_offset = !off;
          c_first_icount = !ic;
          c_events;
          c_kind = Plain;
          c_stored = c_events;
        })
  in
  if version >= 3 then begin
    let v4 = version = 4 in
    (* the chunks listed by the index must exactly tile the chunk region —
       a tampered index cannot silently select, duplicate or skip chunks.
       The same pass resolves each chunk's kind and stored-event count, and
       cross-checks every repeat chunk's body reference against the def
       chunks seen so far (defs always precede their users): the referenced
       offset must hold a def whose payload CRC and event count match what
       the repeat recorded, so a reference can never silently resolve to
       the wrong body. *)
    let expect = ref hlen in
    let defs = Hashtbl.create 16 in  (* def offset -> (payload crc, b) *)
    let chunks =
      Array.map
        (fun c ->
          if c.c_offset <> !expect then
            fail "index does not tile the chunk region (chunk at %d, expected %d)"
              c.c_offset !expect;
          let kind, n, fic, plen, _, _, _, pstart =
            parse_chunk ~v4 raw c.c_offset
          in
          if n <> c.c_events || fic <> c.c_first_icount then
            fail "chunk at %d: header disagrees with index" c.c_offset;
          expect := pstart + plen;
          match kind with
          | Plain -> c
          | Body ->
              let b, _ =
                body_meta raw ~offset:c.c_offset ~payload_len:plen
                  ~payload_start:pstart
              in
              Hashtbl.replace defs c.c_offset
                (Crc32.digest ~pos:pstart ~len:plen raw, b);
              { c with c_kind = Body; c_stored = b }
          | Repeat ->
              let b, _, bref, bcrc, _ =
                repeat_meta raw ~offset:c.c_offset ~n ~payload_len:plen
                  ~payload_start:pstart
              in
              (match Hashtbl.find_opt defs bref with
              | Some (pcrc, db) when pcrc = bcrc && db = b -> ()
              | Some _ ->
                  fail "chunk at %d: body reference %d does not match its def"
                    c.c_offset bref
              | None ->
                  fail "chunk at %d: dangling body reference %d" c.c_offset
                    bref);
              { c with c_kind = Repeat; c_stored = 0 })
        chunks
    in
    if !expect <> index_offset then
      fail "chunk region ends at %d but index starts at %d" !expect index_offset;
    chunks
  end
  else chunks

let of_raw ~verify raw =
  let mlen = String.length Writer.magic in
  if String.length raw < mlen then fail "bad magic (file shorter than a header)";
  let version =
    match String.sub raw 0 mlen with
    | m when m = Writer.magic -> 3
    | m when m = Writer.magic_v4 -> 4
    | m when m = Writer.magic_v2 -> 2
    | _ -> fail "bad magic (not a tquad trace, or an unknown container version)"
  in
  let hlen = Writer.header_bytes in
  let tlen = String.length Writer.trailer_magic in
  let len = String.length raw in
  if len < hlen + 8 + tlen
     || String.sub raw (len - tlen) tlen <> Writer.trailer_magic
  then fail "bad trailer (truncated recording? try salvage)";
  let fingerprint = le64 raw mlen in
  let index_offset =
    let v = ref 0 in
    for i = 7 downto 0 do
      v := (!v lsl 8) lor Char.code raw.[len - tlen - 8 + i]
    done;
    !v
  in
  if index_offset < hlen || index_offset > len - tlen - 8 then
    fail "index offset %d out of range" index_offset;
  let chunks = parse_index raw ~version ~hlen ~index_offset in
  let n_chunks = Array.length chunks in
  let verified = Array.make n_chunks false in
  let n_events = Array.fold_left (fun acc c -> acc + c.c_events) 0 chunks in
  let last_icount = ref 0 in
  (* the last chunk with events — body-def chunks decode to none *)
  let li = ref (n_chunks - 1) in
  while !li >= 0 && chunks.(!li).c_events = 0 do
    decr li
  done;
  if !li >= 0 then
    iter_chunk ~version ~verify ~verified ~chunks ~idx:!li raw chunks.(!li)
      (fun ev -> last_icount := Event.icount ev);
  {
    raw;
    version;
    verify;
    chunks;
    verified;
    n_events;
    last_icount = !last_icount;
    fingerprint;
    salvage = None;
  }

(* ---------- salvage load ---------- *)

(* CRC-verify a candidate chunk at [offset]; [None] if anything about it is
   implausible.  A verifying chunk is, with probability 1 - 2^-32, a chunk
   the writer actually flushed. *)
let try_chunk ~v4 raw offset =
  match parse_chunk ~v4 raw offset with
  | (kind, n, fic, plen, _, _, _, pstart) as parts ->
      let plausible =
        plen >= 1 && (match kind with Body -> n = 0 | Plain | Repeat -> n >= 1)
      in
      if not plausible then None
      else begin
        match
          check_crc ~v4 raw offset parts;
          (match kind with
          | Plain ->
              {
                c_offset = offset;
                c_first_icount = fic;
                c_events = n;
                c_kind = Plain;
                c_stored = n;
              }
          | Body ->
              let b, _ =
                body_meta raw ~offset ~payload_len:plen ~payload_start:pstart
              in
              {
                c_offset = offset;
                c_first_icount = fic;
                c_events = 0;
                c_kind = Body;
                c_stored = b;
              }
          | Repeat ->
              let _ =
                repeat_meta raw ~offset ~n ~payload_len:plen
                  ~payload_start:pstart
              in
              {
                c_offset = offset;
                c_first_icount = fic;
                c_events = n;
                c_kind = Repeat;
                c_stored = 0;
              })
        with
        | c -> Some (c, pstart + plen)
        | exception Format_error _ -> None
      end
  | exception Format_error _ -> None

(* Does the byte range [gap_start, len) hold exactly the index + trailer of
   an intact container?  Then the trailing "gap" of a clean forward scan is
   structure, not damage. *)
let tail_is_index raw gap_start =
  let tlen = String.length Writer.trailer_magic in
  let len = String.length raw in
  len - gap_start >= 8 + tlen
  && String.sub raw (len - tlen) tlen = Writer.trailer_magic
  && (let v = ref 0 in
      for i = 7 downto 0 do
        v := (!v lsl 8) lor Char.code raw.[len - tlen - 8 + i]
      done;
      !v = gap_start)

let salvage_scan ~v4 raw =
  let len = String.length raw in
  let hlen = Writer.header_bytes in
  let chunks = ref [] in
  let n_chunks = ref 0 in
  let dropped_chunks = ref 0 and dropped_bytes = ref 0 in
  let last_span = ref None in  (* (offset, end) of the last accepted chunk *)
  let gap_start = ref (-1) in
  let intact_tail = ref false in
  let note_gap upto =
    if !gap_start >= 0 then begin
      incr dropped_chunks;
      dropped_bytes := !dropped_bytes + (upto - !gap_start);
      gap_start := -1
    end
  in
  let pos = ref hlen in
  while !pos < len do
    match try_chunk ~v4 raw !pos with
    | Some (c, cend) ->
        note_gap !pos;
        (* a duplicated chunk is byte-identical to its predecessor; dropping
           the copy keeps the salvaged events a subsequence of the original *)
        let dup =
          match !last_span with
          | Some (poff, pend) ->
              cend - !pos = pend - poff
              && String.sub raw poff (pend - poff) = String.sub raw !pos (cend - !pos)
          | None -> false
        in
        if not dup then begin
          chunks := c :: !chunks;
          incr n_chunks
        end;
        last_span := Some (!pos, cend);
        pos := cend
    | None ->
        (* resync: skip forward one byte at a time until the next verifying
           chunk; everything skipped is one dropped region *)
        if !gap_start < 0 then gap_start := !pos;
        incr pos
  done;
  if !gap_start >= 0 && tail_is_index raw !gap_start then begin
    intact_tail := true;
    gap_start := -1
  end;
  note_gap len;
  (* a repeat chunk is only as good as its body-def: if the def fell inside
     a corrupt region (or the surviving bytes at the referenced offset no
     longer match the recorded payload CRC), the repeat cannot be expanded
     and is dropped like any other damaged region.  Orphaned defs are kept —
     they decode to no events and cost nothing. *)
  let scanned = Array.of_list (List.rev !chunks) in
  let chunks_kept =
    if not v4 then scanned
    else begin
      let defs = Hashtbl.create 16 in
      Array.iter
        (fun c ->
          if c.c_kind = Body then begin
            let _, _, _, plen, _, _, _, pstart = parse_chunk ~v4 raw c.c_offset in
            Hashtbl.replace defs c.c_offset
              (Crc32.digest ~pos:pstart ~len:plen raw, c.c_stored)
          end)
        scanned;
      let kept =
        List.filter
          (fun c ->
            match c.c_kind with
            | Plain | Body -> true
            | Repeat ->
                let _, _, _, plen, _, _, _, pstart =
                  parse_chunk ~v4 raw c.c_offset
                in
                let b, _, bref, bcrc, _ =
                  repeat_meta raw ~offset:c.c_offset ~n:c.c_events
                    ~payload_len:plen ~payload_start:pstart
                in
                (match Hashtbl.find_opt defs bref with
                | Some (pcrc, db) when pcrc = bcrc && db = b -> true
                | _ ->
                    incr dropped_chunks;
                    dropped_bytes :=
                      !dropped_bytes + (pstart + plen - c.c_offset);
                    false))
          (Array.to_list scanned)
      in
      Array.of_list kept
    end
  in
  n_chunks := Array.length chunks_kept;
  let reason =
    if !dropped_chunks = 0 then
      if !intact_tail then "all chunks verified; container intact"
      else
        "all chunks verified; trailer/index missing (recording not \
         finalized?)"
    else
      Printf.sprintf
        "%d corrupt or unexpandable region(s) totalling %d byte(s) dropped \
         by the forward scan"
        !dropped_chunks !dropped_bytes
  in
  ( chunks_kept,
    {
      salvaged_chunks = !n_chunks;
      dropped_chunks = !dropped_chunks;
      dropped_bytes = !dropped_bytes;
      reason;
    } )

let of_raw_salvage ~verify raw =
  let mlen = String.length Writer.magic in
  if String.length raw < mlen then fail "bad magic (file shorter than a header)";
  let version =
    match String.sub raw 0 mlen with
    | m when m = Writer.magic -> 3
    | m when m = Writer.magic_v4 -> 4
    | m when m = Writer.magic_v2 ->
        fail "salvage needs a v3/v4 container (v2 chunks carry no checksums)"
    | _ -> fail "bad magic (not a tquad trace, or an unknown container version)"
  in
  if String.length raw < Writer.header_bytes then fail "truncated header";
  let fingerprint = le64 raw mlen in
  let chunks, info = salvage_scan ~v4:(version = 4) raw in
  let n_chunks = Array.length chunks in
  (* the forward scan only kept CRC-verified chunks, so they are all born
     verified *)
  let verified = Array.make n_chunks true in
  let n_events = Array.fold_left (fun acc c -> acc + c.c_events) 0 chunks in
  let last_icount = ref 0 in
  (* the last chunk with events — a trailing orphaned def decodes to none *)
  let li = ref (n_chunks - 1) in
  while !li >= 0 && chunks.(!li).c_events = 0 do
    decr li
  done;
  if !li >= 0 then
    iter_chunk ~version ~verify:true ~verified ~chunks ~idx:!li raw
      chunks.(!li)
      (fun ev -> last_icount := Event.icount ev);
  {
    raw;
    version;
    verify;
    chunks;
    verified;
    n_events;
    last_icount = !last_icount;
    fingerprint;
    salvage = Some info;
  }

let of_string ?(verify = true) ?(mode = Strict) raw =
  match mode with
  | Strict -> of_raw ~verify raw
  | Salvage -> of_raw_salvage ~verify raw

let load ?verify ?mode path = of_string ?verify ?mode (read_file path)

(* Same loop as [iter_chunk], dispatching on the event's tag instead of
   through one composite sink: the replay driver keeps one fused sink per
   tag, and routing here saves a closure hop per event.  Repeat chunks go
   through the generic expansion with a dispatching sink — they are the
   compressed minority of chunks, and expansion already amortizes the
   decode. *)
let iter_chunk_tags ~version ~verify ~verified ~chunks ~idx raw chunk
    (per_tag : (Event.t -> unit) array) =
  match chunk.c_kind with
  | Repeat | Body ->
      iter_chunk ~version ~verify ~verified ~chunks ~idx raw chunk (fun ev ->
          per_tag.(Event.tag ev) ev)
  | Plain ->
      let n, first_icount, payload_len, payload_start =
        if version >= 3 then begin
          let v4 = version = 4 in
          let ((_, n, fic, plen, _, _, _, pstart) as parts) =
            parse_chunk ~v4 raw chunk.c_offset
          in
          if n <> chunk.c_events || fic <> chunk.c_first_icount then
            fail "chunk at %d: header disagrees with index" chunk.c_offset;
          if verify && not verified.(idx) then begin
            check_crc ~v4 raw chunk.c_offset parts;
            verified.(idx) <- true
          end;
          (n, fic, plen, pstart)
        end
        else begin
          let pos = ref chunk.c_offset in
          let n = leb_u raw pos in
          let first_icount = leb_u raw pos in
          let payload_len = leb_u raw pos in
          if n < 0 || payload_len < 0 then
            fail "chunk at %d: negative header field" chunk.c_offset;
          (n, first_icount, payload_len, !pos)
        end
      in
      let payload_end = payload_start + payload_len in
      if payload_end > String.length raw then
        fail "chunk at %d overruns file" chunk.c_offset;
      let pos = ref payload_start in
      let st = Event.fresh_state ~icount:first_icount () in
      for _ = 1 to n do
        match Event.decode st raw pos with
        | ev -> per_tag.(Event.tag ev) ev
        | exception Leb.Truncated p -> fail "truncated event at %d" p
        | exception Failure msg -> fail "%s" msg
      done;
      if !pos <> payload_end then
        fail "chunk at %d: payload length mismatch" chunk.c_offset

let iter_tags t per_tag =
  if Array.length per_tag <> Event.n_kinds then
    invalid_arg "Trace.Reader.iter_tags: need one sink per event kind";
  Array.iteri
    (fun idx c ->
      iter_chunk_tags ~version:t.version ~verify:t.verify ~verified:t.verified
        ~chunks:t.chunks ~idx t.raw c per_tag)
    t.chunks

let iter ?from_icount t sink =
  let start =
    match from_icount with
    | None -> 0
    | Some target ->
        (* last chunk whose first_icount <= target; events are icount-sorted
           across chunks, so earlier chunks hold nothing >= target that this
           chunk misses *)
        let lo = ref 0 and hi = ref (Array.length t.chunks - 1) in
        let best = ref 0 in
        while !lo <= !hi do
          let mid = (!lo + !hi) / 2 in
          if t.chunks.(mid).c_first_icount <= target then begin
            best := mid;
            lo := mid + 1
          end
          else hi := mid - 1
        done;
        !best
  in
  let sink =
    match from_icount with
    | None -> sink
    | Some target -> fun ev -> if Event.icount ev >= target then sink ev
  in
  for i = start to Array.length t.chunks - 1 do
    iter_chunk ~version:t.version ~verify:t.verify ~verified:t.verified
      ~chunks:t.chunks ~idx:i t.raw t.chunks.(i) sink
  done

let crc_check t =
  if t.version < 3 then 0 (* v2 carries no checksums *)
  else begin
    let v4 = t.version = 4 in
    Array.iteri
      (fun idx chunk ->
        if not t.verified.(idx) then begin
          check_crc ~v4 t.raw chunk.c_offset
            (parse_chunk ~v4 t.raw chunk.c_offset);
          t.verified.(idx) <- true
        end)
      t.chunks;
    Array.length t.chunks
  end

let verified_chunks t =
  Array.fold_left (fun acc v -> if v then acc + 1 else acc) 0 t.verified

(* Decode one chunk into an array — the serve layer's chunk cache entry.
   The chunk is CRC-verified first (at most once per process, via the
   verified bit all other passes share), so a cached entry is always a
   decoded-and-verified chunk.  Repeat chunks expand to their raw events —
   the cache, like the index, speaks decoded-event units. *)
let chunk_events t idx =
  if idx < 0 || idx >= Array.length t.chunks then
    invalid_arg "Trace.Reader.chunk_events: chunk index out of range";
  let c = t.chunks.(idx) in
  let out = Array.make c.c_events (Event.End { icount = 0 }) in
  let k = ref 0 in
  iter_chunk ~version:t.version ~verify:t.verify ~verified:t.verified
    ~chunks:t.chunks ~idx t.raw c
    (fun ev ->
      (* v2 indexes are not cross-checked against chunk headers at load
         time, so a lying v2 index must surface as Format_error here, not
         as an array bounds crash *)
      if !k >= c.c_events then
        fail "chunk at %d: more events than the index records" c.c_offset;
      out.(!k) <- ev;
      incr k);
  out

let chunk_event_count t idx =
  if idx < 0 || idx >= Array.length t.chunks then
    invalid_arg "Trace.Reader.chunk_event_count: chunk index out of range";
  t.chunks.(idx).c_events

let fingerprint t = t.fingerprint
let n_events t = t.n_events
let n_chunks t = Array.length t.chunks
let last_icount t = t.last_icount
let byte_size t = String.length t.raw
let version t = t.version
let salvage_info t = t.salvage

let stored_events t =
  Array.fold_left (fun acc c -> acc + c.c_stored) 0 t.chunks

let plain_chunks t =
  Array.fold_left
    (fun acc c -> if c.c_kind = Plain then acc + 1 else acc)
    0 t.chunks

let repeat_chunks t =
  Array.fold_left
    (fun acc c -> if c.c_kind = Repeat then acc + 1 else acc)
    0 t.chunks

let body_chunks t =
  Array.fold_left
    (fun acc c -> if c.c_kind = Body then acc + 1 else acc)
    0 t.chunks
