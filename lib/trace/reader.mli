(** Reader for recorded traces (see {!Writer} for the file layout).

    A loaded reader is immutable — [iter] keeps all decoding state local —
    so one reader can drive any number of concurrent replay domains over the
    same in-memory image ({!Replay.parallel}). *)

exception Format_error of string

type t

val load : string -> t
(** Read the whole file, validate magic and trailer, decode the chunk index.
    @raise Format_error on a corrupt or truncated file.
    @raise Sys_error if the file cannot be read. *)

val iter : ?from_icount:int -> t -> (Event.t -> unit) -> unit
(** Replay events in recording order.  With [from_icount], decoding starts at
    the last chunk whose first instruction count is [<= from_icount]
    (binary search over the index) and events with a smaller instruction
    count are skipped — an O(log n) seek. *)

val iter_tags : t -> (Event.t -> unit) array -> unit
(** Replay the whole trace, routing each event to the sink at index
    {!Event.tag}[ ev] — the hot path under {!Replay.parallel}, where each
    tag's sink fans out to the jobs interested in that kind.
    @raise Invalid_argument unless given exactly {!Event.n_kinds} sinks. *)

val fingerprint : t -> int64
(** The recorded program's {!Tq_vm.Program.fingerprint} as stamped by the
    writer; [0L] when the recorder did not know it. *)

val n_events : t -> int
val n_chunks : t -> int

val last_icount : t -> int
(** Instruction count of the last event (the recording's [End] event when the
    recording completed), [0] for an empty trace. *)

val byte_size : t -> int
(** On-disk size of the trace, in bytes. *)
