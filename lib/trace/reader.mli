(** Reader for recorded traces (see {!Writer} for the file layout and
    [docs/TRACE.md] for the full wire-format specification).

    A loaded reader is immutable — [iter] keeps all decoding state local —
    so one reader can drive any number of concurrent replay domains over the
    same in-memory image ({!Replay.parallel}).

    All three live container versions load here: v2 (no checksums), v3
    (CRC + salvage) and v4 (redundancy-suppressed).  A v4 {e repeat chunk}
    — an iteration count, per-field stride/literal tables and a reference
    to the {e body-def chunk} holding the loop body's events (interned:
    one def serves every repeat of the same body) — is expanded
    transparently during iteration, so every consumer ({!iter},
    {!iter_tags}, {!chunk_events}, and everything built on them:
    sequential, sharded and salvage replay) sees the exact event stream
    the probe emitted.  Body refs are cross-checked against the def's
    payload CRC at load time, so a reference can never silently resolve to
    the wrong body; in [Salvage] mode a repeat chunk whose def was lost to
    corruption is dropped and counted.  All event counts exposed here
    ({!n_events}, {!chunk_event_count}, the index) are {e raw} (decoded)
    counts; {!stored_events} is the physically-encoded count.

    Fault tolerance: v3/v4 chunks carry a CRC-32 that is verified lazily, per
    chunk, before any of its events are decoded — corruption anywhere in a
    chunk surfaces as {!Format_error}, never as a decode crash or silently
    wrong events.  Each chunk is verified {e at most once per process}: the
    reader keeps a per-chunk verified bit shared by every iteration pass
    ({!iter}, {!iter_tags}, {!crc_check}, {!chunk_events}), so repeated
    replays — or several replay domains walking the same reader — never pay
    the digest twice.  The bits are written without synchronization; a race
    between domains can at worst re-verify a chunk, never skip an unverified
    one.  In [Strict] mode the trailer, the index and the exact
    tiling of the chunk region are validated up front; [Salvage] mode ignores
    the trailer and index entirely and rebuilds the chunk list by scanning
    forward from the header, keeping every chunk whose CRC verifies — the
    path for recordings killed mid-run ([.tmp] files) or damaged on disk. *)

exception Format_error of string

type t

type mode =
  | Strict  (** require an intact trailer, index and chunk tiling (default) *)
  | Salvage
      (** rebuild the chunk list by forward scan; only CRC-verified chunks
          are kept (v3/v4 containers only — v2 has no checksums) *)

type salvage = {
  salvaged_chunks : int;  (** chunks recovered (CRC-verified) *)
  dropped_chunks : int;
      (** corrupt byte-regions skipped by the scan — a lower bound on the
          number of chunks lost *)
  dropped_bytes : int;  (** total bytes in those regions *)
  reason : string;  (** human-readable scan summary *)
}

val load : ?verify:bool -> ?mode:mode -> string -> t
(** Read the whole file, validate magic and (in [Strict] mode) trailer and
    index, decode the chunk index.  [verify] (default [true]) controls the
    lazy per-chunk CRC check during iteration; salvage scanning always
    verifies.  v2 containers load in [Strict] mode with no CRC verification
    (the format has none).
    @raise Format_error on a corrupt or truncated file.
    @raise Sys_error if the file cannot be read. *)

val of_string : ?verify:bool -> ?mode:mode -> string -> t
(** [load] on an in-memory container image (no file involved). *)

val iter : ?from_icount:int -> t -> (Event.t -> unit) -> unit
(** Replay events in recording order.  With [from_icount], decoding starts at
    the last chunk whose first instruction count is [<= from_icount]
    (binary search over the index) and events with a smaller instruction
    count are skipped — an O(log n) seek.
    @raise Format_error if a chunk fails its CRC check or is malformed. *)

val iter_tags : t -> (Event.t -> unit) array -> unit
(** Replay the whole trace, routing each event to the sink at index
    {!Event.tag}[ ev] — the hot path under {!Replay.parallel}, where each
    tag's sink fans out to the jobs interested in that kind.
    @raise Invalid_argument unless given exactly {!Event.n_kinds} sinks.
    @raise Format_error if a chunk fails its CRC check or is malformed. *)

val crc_check : t -> int
(** Ensure every chunk's CRC-32 has been verified, without decoding any
    events, and return the chunk count ([0] for a v2 container, which
    carries no checksums).  Chunks already verified this process (their
    verified bit is set) are skipped; the rest are digested and marked.  The
    full-file verification pass behind a manifest's [trace.crc_verify_s]
    timing.
    @raise Format_error on the first chunk whose CRC does not match. *)

val chunk_events : t -> int -> Event.t array
(** Decode chunk [i] (0-based, [0 <= i < ]{!n_chunks}) into an array of its
    events, CRC-verifying it first if its verified bit is not yet set.
    Chunks decode independently (the delta-codec state resets at every chunk
    boundary), so this is the chunk-granular read behind the serve layer's
    decoded-chunk cache: a returned array is always a decoded-and-verified
    chunk, and re-reading a chunk never re-verifies it.
    @raise Invalid_argument if the index is out of range.
    @raise Format_error if the chunk fails its CRC check or is malformed. *)

val chunk_event_count : t -> int -> int
(** Number of events in chunk [i], straight from the chunk index — no decode,
    no CRC.  Lets the sharded replay pipeline place event-balanced shard
    boundaries before any chunk is touched.
    @raise Invalid_argument if the index is out of range. *)

val verified_chunks : t -> int
(** How many chunks have their verified bit set — observability for the
    verify-at-most-once contract ([= ]{!n_chunks} after {!crc_check} or a
    full iteration of a v3 trace; salvage-loaded readers are born fully
    verified). *)

val fingerprint : t -> int64
(** The recorded program's {!Tq_vm.Program.fingerprint} as stamped by the
    writer; [0L] when the recorder did not know it. *)

val n_events : t -> int
val n_chunks : t -> int

val last_icount : t -> int
(** Instruction count of the last event (the recording's [End] event when the
    recording completed), [0] for an empty trace. *)

val byte_size : t -> int
(** On-disk size of the trace, in bytes. *)

val version : t -> int
(** Container version of the loaded file: [4], [3] or [2]. *)

val stored_events : t -> int
(** Events physically encoded in the container: plain events plus one body
    per body-def chunk (a body shared by many repeats is counted once).
    [= n_events] for v2/v3; [n_events t / stored_events t] is the
    event-level compression ratio of a v4 trace. *)

val plain_chunks : t -> int
(** Plain event chunks in the container ([= n_chunks] for v2/v3). *)

val repeat_chunks : t -> int
(** v4 repeat (suppressed loop) chunks in the container ([0] for v2/v3). *)

val body_chunks : t -> int
(** v4 body-def chunks (interned loop bodies referenced by repeat chunks)
    in the container ([0] for v2/v3).  A def decodes to no events of its
    own — {!chunk_event_count} reports [0] for it. *)

val salvage_info : t -> salvage option
(** Scan statistics; [Some] exactly when the reader was loaded in [Salvage]
    mode. *)
