type job = {
  name : string;
  wants : Event.kind list;
  make : unit -> (Event.t -> unit) * (unit -> string);
}

let job ?(wants = Event.all_kinds) name make = { name; wants; make }

let wanted_tags j =
  let w = Array.make Event.n_kinds false in
  List.iter (fun k -> w.(Event.kind_tag k) <- true) j.wants;
  w

(* Unrolled fan-out for the common arities: the dispatch runs once per event
   tag occurrence, and binding each sink directly beats an Array.iter per
   event. *)
let fuse = function
  | [||] -> fun (_ : Event.t) -> ()
  | [| s0 |] -> s0
  | [| s0; s1 |] -> fun ev -> s0 ev; s1 ev
  | [| s0; s1; s2 |] -> fun ev -> s0 ev; s1 ev; s2 ev
  | [| s0; s1; s2; s3 |] ->
      fun ev ->
        s0 ev;
        s1 ev;
        s2 ev;
        s3 ev
  | [| s0; s1; s2; s3; s4 |] ->
      fun ev ->
        s0 ev;
        s1 ev;
        s2 ev;
        s3 ev;
        s4 ev
  | [| s0; s1; s2; s3; s4; s5 |] ->
      fun ev ->
        s0 ev;
        s1 ev;
        s2 ev;
        s3 ev;
        s4 ev;
        s5 ev
  | sinks -> fun ev -> Array.iter (fun s -> s ev) sinks

let run_job reader j =
  let sink, finish = j.make () in
  let wanted = wanted_tags j in
  if Array.for_all Fun.id wanted then Reader.iter reader sink
  else Reader.iter reader (fun ev -> if wanted.(Event.tag ev) then sink ev);
  finish ()

let sequential reader jobs =
  List.map (fun j -> (j.name, run_job reader j)) jobs

(* Run one group of jobs through a single decode pass.  Each event tag gets
   its own fused sink over the jobs that declared interest in it, so a tool
   never sees (and never pays a call for) events it would discard. *)
let run_group reader group =
  let made = Array.map (fun j -> j.make ()) group in
  let per_tag =
    Array.init Event.n_kinds (fun tag ->
        let sinks = ref [] in
        for i = Array.length group - 1 downto 0 do
          if (wanted_tags group.(i)).(tag) then sinks := fst made.(i) :: !sinks
        done;
        fuse (Array.of_list !sinks))
  in
  Reader.iter_tags reader per_tag;
  Array.map (fun (_, finish) -> finish ()) made

let parallel ?domains reader jobs =
  let jobs = Array.of_list jobs in
  let n = Array.length jobs in
  if n = 0 then []
  else begin
    (* Each group pays one decode pass, so never split into more groups
       than the machine can actually run in parallel: extra groups add
       decode work without adding concurrency. *)
    let hw = Domain.recommended_domain_count () in
    let domains =
      match domains with
      | Some d -> max 1 (min (min d hw) n)
      | None -> max 1 (min hw n)
    in
    (* static round-robin partition: group g holds jobs g, g+domains, ... *)
    let group_idxs g =
      let rec go i acc = if i >= n then List.rev acc else go (i + domains) (i :: acc) in
      go g []
    in
    let results = Array.make n None in
    let errors = Array.make domains None in
    let worker g () =
      let idxs = group_idxs g in
      let group = Array.of_list (List.map (fun i -> jobs.(i)) idxs) in
      match run_group reader group with
      | outs -> List.iteri (fun k i -> results.(i) <- Some outs.(k)) idxs
      | exception e -> errors.(g) <- Some e
    in
    let spawned =
      List.init (domains - 1) (fun g -> Domain.spawn (worker (g + 1)))
    in
    Fun.protect ~finally:(fun () -> List.iter Domain.join spawned) (worker 0);
    Array.iter (function Some e -> raise e | None -> ()) errors;
    Array.to_list
      (Array.mapi
         (fun i j -> (j.name, Option.value ~default:"" results.(i)))
         jobs)
  end

let check_program reader prog =
  let recorded = Reader.fingerprint reader in
  if Int64.equal recorded 0L then Ok () (* recorder did not know the program *)
  else
    let actual = Tq_vm.Program.fingerprint prog in
    if Int64.equal recorded actual then Ok ()
    else
      Error
        (Printf.sprintf
           "trace was recorded from a different program (trace fingerprint \
            %016Lx, program fingerprint %016Lx); re-record or replay against \
            the original binary"
           recorded actual)
