(* Replay driver: sequential oracle, supervised single-pass groups, and the
   sharded streaming pipeline behind [parallel].

   The pipeline (see DESIGN.md §8) decodes + CRC-verifies every chunk exactly
   once into pooled event arrays, walks the chunks in order exactly once for
   the order-sensitive work (non-sharded tools and the shard-seed prefix
   trackers), and fans trace ranges of sharded tools out across domains, with
   per-range partial states merged left-to-right at the end. *)

type ('state, 'seed) shard_spec = {
  prefix_wants : Event.kind list;
  prefix : unit -> (Event.t -> unit) * (unit -> 'seed);
  shard : 'seed -> (Event.t -> unit) * (unit -> 'state);
  merge : 'state -> 'state -> unit;
  render : 'state -> string;
}

type sharded = Sharded : ('state, 'seed) shard_spec -> sharded

type job = {
  name : string;
  wants : Event.kind list;
  make : unit -> (Event.t -> unit) * (unit -> string);
  sharded : sharded option;
}

type failure = { exn : exn; backtrace : string }
type outcome = (string, failure) result
type domain_timing = { domain : int; jobs : string list; wall_s : float }

type run_stats = {
  rs_domains : int;
  rs_shards : int;
  rs_batch : int;
  rs_chunks : int;
  rs_events : int;
  rs_decode_s : float;
  rs_ordered_s : float;
  rs_shard_s : float;
  rs_merge_s : float;
  rs_peak_live_chunks : int;
}

let job ?(wants = Event.all_kinds) ?sharded name make =
  { name; wants; make; sharded }

let capture exn = { exn; backtrace = Printexc.get_backtrace () }

let failure_message f =
  match f.exn with
  | Reader.Format_error msg -> "trace unreadable: " ^ msg
  | e -> Printexc.to_string e

let is_trace_error f =
  match f.exn with Reader.Format_error _ -> true | _ -> false

let wanted_tags_of kinds =
  let w = Array.make Event.n_kinds false in
  List.iter (fun k -> w.(Event.kind_tag k) <- true) kinds;
  w

let wanted_tags j = wanted_tags_of j.wants

(* Unrolled fan-out for the common arities: the dispatch runs once per event
   tag occurrence, and binding each sink directly beats an Array.iter per
   event. *)
let fuse = function
  | [||] -> fun (_ : Event.t) -> ()
  | [| s0 |] -> s0
  | [| s0; s1 |] -> fun ev -> s0 ev; s1 ev
  | [| s0; s1; s2 |] -> fun ev -> s0 ev; s1 ev; s2 ev
  | [| s0; s1; s2; s3 |] ->
      fun ev ->
        s0 ev;
        s1 ev;
        s2 ev;
        s3 ev
  | [| s0; s1; s2; s3; s4 |] ->
      fun ev ->
        s0 ev;
        s1 ev;
        s2 ev;
        s3 ev;
        s4 ev
  | [| s0; s1; s2; s3; s4; s5 |] ->
      fun ev ->
        s0 ev;
        s1 ev;
        s2 ev;
        s3 ev;
        s4 ev;
        s5 ev
  | sinks -> fun ev -> Array.iter (fun s -> s ev) sinks

(* Walk a decoded chunk through one fused-sink-per-tag dispatch table — the
   inner loop shared by the pipeline's ordered stage and the serve layer's
   decoded-chunk-cache pass. *)
let dispatch per_tag evs =
  for i = 0 to Array.length evs - 1 do
    let ev = Array.unsafe_get evs i in
    (Array.unsafe_get per_tag (Event.tag ev)) ev
  done

(* One job, one decode pass, every exception captured: a raising tool (or a
   trace that fails its CRC check mid-iteration) becomes this job's [Error],
   not an abort of the caller. *)
let run_job reader j =
  match
    let sink, finish = j.make () in
    let wanted = wanted_tags j in
    if Array.for_all Fun.id wanted then Reader.iter reader sink
    else Reader.iter reader (fun ev -> if wanted.(Event.tag ev) then sink ev);
    finish ()
  with
  | report -> Ok report
  | exception e -> Error (capture e)

let sequential ?timings reader jobs =
  match timings with
  | None -> List.map (fun j -> (j.name, run_job reader j)) jobs
  | Some report ->
      let timed = ref [] in
      let results =
        List.map
          (fun j ->
            let t0 = Unix.gettimeofday () in
            let out = run_job reader j in
            let wall_s = Unix.gettimeofday () -. t0 in
            timed := { domain = 0; jobs = [ j.name ]; wall_s } :: !timed;
            (j.name, out))
          jobs
      in
      report (List.rev !timed);
      results

(* Run one group of jobs through a single dispatch pass.  Each event tag
   gets its own fused sink over the jobs that declared interest in it, so a
   tool never sees (and never pays a call for) events it would discard.
   [iter] supplies the pass itself — [Reader.iter_tags] for the in-process
   replay paths, the decoded-chunk cache walk for the serve layer — and
   must deliver every event to the sink at the event's tag.

   Supervision: each job's sink is guarded — a raising tool is retired from
   the rest of the pass (its sink becomes a no-op) and comes back as [Error],
   instead of poisoning the whole group.  Only a failure of the dispatch pass
   itself (an unreadable trace) fails every job still live in the group. *)
let run_group_with ~iter group =
  let n = Array.length group in
  let made =
    Array.map
      (fun j -> match j.make () with m -> Ok m | exception e -> Error (capture e))
      group
  in
  let failed = Array.map (function Ok _ -> None | Error f -> Some f) made in
  let alive = Array.map Option.is_none failed in
  let guard i raw_sink ev =
    if alive.(i) then
      try raw_sink ev
      with e ->
        alive.(i) <- false;
        failed.(i) <- Some (capture e)
  in
  let per_tag =
    Array.init Event.n_kinds (fun tag ->
        let sinks = ref [] in
        for i = n - 1 downto 0 do
          match made.(i) with
          | Ok (sink, _) when (wanted_tags group.(i)).(tag) ->
              sinks := guard i sink :: !sinks
          | _ -> ()
        done;
        fuse (Array.of_list !sinks))
  in
  (match iter per_tag with
  | () -> ()
  | exception e ->
      let f = capture e in
      Array.iteri (fun i live -> if live then failed.(i) <- Some f) alive);
  Array.mapi
    (fun i m ->
      match (failed.(i), m) with
      | Some f, _ | None, Error f -> Error f
      | None, Ok (_, finish) -> (
          match finish () with r -> Ok r | exception e -> Error (capture e)))
    made

let supervised ~iter jobs =
  let group = Array.of_list jobs in
  let outs = run_group_with ~iter group in
  List.mapi (fun i j -> (j.name, outs.(i))) jobs

(* ------------------------------------------------------------------ *)
(* Sharded streaming pipeline                                          *)
(* ------------------------------------------------------------------ *)

(* Monomorphic view of one sharded job, the existential unpacked once into
   closures so the ['state]/['seed] types never escape.  The prefix sink and
   [snapshot] only ever run under the ordered token (serialized, handed off
   through the pipeline mutex); [start]'s returned sink/fin run on whichever
   domain holds the shard item, one at a time. *)
type shard_runner = {
  r_prefix_sink : Event.t -> unit;
  r_prefix_wants : bool array;
  r_snapshot : int -> unit;  (* capture the seed for shard [k] *)
  r_start : int -> (Event.t -> unit) * (unit -> unit);
  r_finish : unit -> string;  (* fold-merge the shard states, render *)
}

let make_runner n_shards (Sharded spec) =
  let psink, psnap = spec.prefix () in
  let seeds = Array.make n_shards None in
  let states = Array.make n_shards None in
  let snapshot k = seeds.(k) <- Some (psnap ()) in
  let start k =
    let seed =
      match seeds.(k) with Some s -> s | None -> assert false
      (* claim waits for [ordered_pos] to pass the shard's lower boundary *)
    in
    let sink, fin = spec.shard seed in
    (sink, fun () -> states.(k) <- Some (fin ()))
  in
  let finish () =
    let root = match states.(0) with Some s -> s | None -> assert false in
    for k = 1 to n_shards - 1 do
      match states.(k) with
      | Some s -> spec.merge root s
      | None -> assert false
    done;
    spec.render root
  in
  {
    r_prefix_sink = psink;
    r_prefix_wants = wanted_tags_of spec.prefix_wants;
    r_snapshot = snapshot;
    r_start = start;
    r_finish = finish;
  }

(* One trace range of one sharded job.  [i_run] holds the shard's sink/fin
   once started, so a stalled item can be released and resumed by any
   domain. *)
type item = {
  i_job : int;
  i_shard : int;
  i_lo : int;
  i_hi : int;  (* chunk range [i_lo, i_hi) *)
  mutable i_pos : int;
  mutable i_busy : bool;
  mutable i_done : bool;
  mutable i_run : ((Event.t -> unit) * (unit -> unit)) option;
}

(* Event-balanced shard boundaries over the chunk index: boundary [k] is the
   first chunk index at which the running event count reaches k/S of the
   total.  Straight from the chunk index — no chunk is decoded. *)
let shard_bounds reader n_chunks n_shards =
  let total = ref 0 in
  for i = 0 to n_chunks - 1 do
    total := !total + Reader.chunk_event_count reader i
  done;
  let bounds = Array.make (n_shards + 1) n_chunks in
  bounds.(0) <- 0;
  let cum = ref 0 and k = ref 1 in
  for i = 0 to n_chunks - 1 do
    cum := !cum + Reader.chunk_event_count reader i;
    while !k < n_shards && !cum * n_shards >= !total * !k do
      bounds.(!k) <- i + 1;
      incr k
    done
  done;
  bounds

type action =
  | Exit
  | Ordered of int * Event.t array
  | Work of item * Event.t array option
  | Decode of int

let run_pipeline ~domains ~n_shards ~window reader jobs =
  let n = Array.length jobs in
  let c = Reader.n_chunks reader in
  let mu = Mutex.create () and cv = Condition.create () in
  let failed = Array.make n None in
  let alive = Array.make n true in
  let fail_job jx e =
    Mutex.lock mu;
    if failed.(jx) = None then failed.(jx) <- Some (capture e);
    alive.(jx) <- false;
    Condition.broadcast cv;
    Mutex.unlock mu
  in
  let bounds = shard_bounds reader c n_shards in
  (* Per-job setup: factories for ordered jobs, runners (prefix tracker +
     seed/state stores) for sharded ones.  A raising factory is that job's
     failure; its shard items still run, as refcount-draining no-ops. *)
  let ordered_made = Array.make n None in
  let runners = Array.make n None in
  Array.iteri
    (fun jx j ->
      match j.sharded with
      | None -> (
          match j.make () with
          | m -> ordered_made.(jx) <- Some m
          | exception e ->
              failed.(jx) <- Some (capture e);
              alive.(jx) <- false)
      | Some sh -> (
          match
            let r = make_runner n_shards sh in
            (* seed shard 0 (trace start) and any empty leading shards now,
               before any event flows *)
            r.r_snapshot 0;
            for k = 1 to n_shards - 1 do
              if bounds.(k) = 0 then r.r_snapshot k
            done;
            r
          with
          | r -> runners.(jx) <- Some r
          | exception e ->
              failed.(jx) <- Some (capture e);
              alive.(jx) <- false))
    jobs;
  let wants = Array.map wanted_tags jobs in
  (* Fused ordered-stage dispatch table: non-sharded jobs' sinks plus the
     sharded jobs' prefix trackers, each guarded so a raising tool is
     retired without stopping the pass. *)
  let guard jx raw_sink ev =
    if alive.(jx) then try raw_sink ev with e -> fail_job jx e
  in
  let n_ordered_sinks = ref 0 in
  let per_tag =
    Array.init Event.n_kinds (fun tag ->
        let sinks = ref [] in
        for jx = n - 1 downto 0 do
          (match ordered_made.(jx) with
          | Some (sink, _) when wants.(jx).(tag) ->
              incr n_ordered_sinks;
              sinks := guard jx sink :: !sinks
          | _ -> ());
          match runners.(jx) with
          | Some r when r.r_prefix_wants.(tag) ->
              incr n_ordered_sinks;
              sinks := guard jx r.r_prefix_sink :: !sinks
          | _ -> ()
        done;
        fuse (Array.of_list !sinks))
  in
  let has_ordered_walk = !n_ordered_sinks > 0 in
  let items =
    let l = ref [] in
    for jx = n - 1 downto 0 do
      if jobs.(jx).sharded <> None then
        for k = n_shards - 1 downto 0 do
          l :=
            {
              i_job = jx;
              i_shard = k;
              i_lo = bounds.(k);
              i_hi = bounds.(k + 1);
              i_pos = bounds.(k);
              i_busy = false;
              i_done = false;
              i_run = None;
            }
            :: !l
        done
    done;
    Array.of_list !l
  in
  let n_items = Array.length items in
  let n_sharded =
    Array.fold_left
      (fun acc j -> if j.sharded <> None then acc + 1 else acc)
      0 jobs
  in
  (* Shared pipeline state, all under [mu].  A chunk slot holds the decoded
     event array until every consumer — the ordered pass plus one shard item
     per sharded job — has walked it, then is freed so live decoded chunks
     stay bounded by the window. *)
  let slots = Array.make c None in
  let refcnt = Array.make c (1 + n_sharded) in
  let next_decode = ref 0 in
  let ordered_pos = ref 0 in
  let ordered_busy = ref false in
  let next_snap = ref 1 in
  while !next_snap < n_shards && bounds.(!next_snap) = 0 do
    incr next_snap
  done;
  let done_items = ref 0 in
  let live_slots = ref 0 in
  let peak_live = ref 0 in
  let fatal = ref None in
  let release_chunk i =
    refcnt.(i) <- refcnt.(i) - 1;
    if refcnt.(i) = 0 then begin
      slots.(i) <- None;
      decr live_slots
    end
  in
  let min_needed () =
    let mn = ref !ordered_pos in
    Array.iter
      (fun it -> if (not it.i_done) && it.i_pos < !mn then mn := it.i_pos)
      items;
    !mn
  in
  let finished () = !ordered_pos >= c && !done_items = n_items in
  let claim_item () =
    let found = ref None in
    (try
       Array.iter
         (fun it ->
           if (not it.i_busy) && not it.i_done then begin
             let ready_chunk =
               it.i_pos >= it.i_hi || slots.(it.i_pos) <> None
             in
             let seed_ready =
               (* a dead job's items are pure refcount drains, no seed *)
               (not alive.(it.i_job))
               || bounds.(it.i_shard) = 0
               || !ordered_pos >= bounds.(it.i_shard)
             in
             if ready_chunk && seed_ready then begin
               found := Some it;
               raise Exit
             end
           end)
         items
     with Exit -> ());
    match !found with
    | None -> None
    | Some it ->
        it.i_busy <- true;
        let evs = if it.i_pos < it.i_hi then slots.(it.i_pos) else None in
        Some (Work (it, evs))
  in
  (* per-domain stage clocks: written only by their own worker *)
  let wall = Array.make domains 0. in
  let decode_s = Array.make domains 0. in
  let ordered_s = Array.make domains 0. in
  let shard_s = Array.make domains 0. in
  let do_ordered d i evs =
    let t0 = Unix.gettimeofday () in
    if has_ordered_walk then dispatch per_tag evs;
    (* shard boundaries landing right after this chunk: snapshot every live
       runner's prefix state before publishing the advance, so a shard can
       only start once its seed exists.  Only the token holder touches
       [next_snap]. *)
    while !next_snap < n_shards && bounds.(!next_snap) = i + 1 do
      let k = !next_snap in
      Array.iteri
        (fun jx r ->
          match r with
          | Some r when alive.(jx) -> (
              try r.r_snapshot k with e -> fail_job jx e)
          | _ -> ())
        runners;
      incr next_snap
    done;
    Mutex.lock mu;
    release_chunk i;
    ordered_pos := i + 1;
    ordered_busy := false;
    Condition.broadcast cv;
    Mutex.unlock mu;
    ordered_s.(d) <- ordered_s.(d) +. (Unix.gettimeofday () -. t0)
  in
  let do_work d it first =
    let t0 = Unix.gettimeofday () in
    let jx = it.i_job in
    if it.i_run = None && alive.(jx) then begin
      match runners.(jx) with
      | Some r -> (
          match r.r_start it.i_shard with
          | run -> it.i_run <- Some run
          | exception e -> fail_job jx e)
      | None -> ()
    end;
    let current = ref first in
    let stop = ref false in
    while not !stop do
      match !current with
      | Some evs when it.i_pos < it.i_hi ->
          (if alive.(jx) then
             match it.i_run with
             | Some (sink, _) -> (
                 let w = wants.(jx) in
                 try
                   for i = 0 to Array.length evs - 1 do
                     let ev = Array.unsafe_get evs i in
                     if Array.unsafe_get w (Event.tag ev) then sink ev
                   done
                 with e -> fail_job jx e)
             | None -> ());
          Mutex.lock mu;
          release_chunk it.i_pos;
          it.i_pos <- it.i_pos + 1;
          if it.i_pos < it.i_hi then begin
            current := slots.(it.i_pos);
            if !current = None then begin
              (* next chunk not decoded yet: release the item so this domain
                 can decode instead of blocking on it *)
              it.i_busy <- false;
              stop := true
            end
          end
          else current := None;
          Condition.broadcast cv;
          Mutex.unlock mu
      | _ ->
          (if alive.(jx) then
             match it.i_run with
             | Some (_, fin) -> ( try fin () with e -> fail_job jx e)
             | None -> ());
          Mutex.lock mu;
          it.i_done <- true;
          it.i_busy <- false;
          incr done_items;
          Condition.broadcast cv;
          Mutex.unlock mu;
          stop := true
    done;
    shard_s.(d) <- shard_s.(d) +. (Unix.gettimeofday () -. t0)
  in
  let do_decode d i =
    let t0 = Unix.gettimeofday () in
    match Reader.chunk_events reader i with
    | evs ->
        Mutex.lock mu;
        slots.(i) <- Some evs;
        incr live_slots;
        if !live_slots > !peak_live then peak_live := !live_slots;
        Condition.broadcast cv;
        Mutex.unlock mu;
        decode_s.(d) <- decode_s.(d) +. (Unix.gettimeofday () -. t0)
    | exception e ->
        Mutex.lock mu;
        if !fatal = None then fatal := Some (capture e);
        Condition.broadcast cv;
        Mutex.unlock mu
  in
  let worker d () =
    let t0 = Unix.gettimeofday () in
    (try
       let rec loop () =
         Mutex.lock mu;
         let rec decide () =
           if !fatal <> None || finished () then Exit
           else if
             (not !ordered_busy)
             && !ordered_pos < c
             && slots.(!ordered_pos) <> None
           then begin
             ordered_busy := true;
             match slots.(!ordered_pos) with
             | Some evs -> Ordered (!ordered_pos, evs)
             | None -> assert false
           end
           else
             match claim_item () with
             | Some w -> w
             | None ->
                 if !next_decode < c && !next_decode < min_needed () + window
                 then begin
                   let i = !next_decode in
                   incr next_decode;
                   Decode i
                 end
                 else begin
                   Condition.wait cv mu;
                   decide ()
                 end
         in
         let action = decide () in
         Mutex.unlock mu;
         match action with
         | Exit -> ()
         | Ordered (i, evs) ->
             do_ordered d i evs;
             loop ()
         | Work (it, evs) ->
             do_work d it evs;
             loop ()
         | Decode i ->
             do_decode d i;
             loop ()
       in
       loop ()
     with e ->
       (* backstop: no exception crosses a domain boundary un-accounted *)
       Mutex.lock mu;
       if !fatal = None then fatal := Some (capture e);
       Condition.broadcast cv;
       Mutex.unlock mu);
    wall.(d) <- Unix.gettimeofday () -. t0
  in
  let spawned =
    List.init (domains - 1) (fun d -> Domain.spawn (worker (d + 1)))
  in
  Fun.protect ~finally:(fun () -> List.iter Domain.join spawned) (worker 0);
  (* assemble results in job order; merges+renders run here, after the join,
     so partial states are safely owned by the caller again *)
  let merge_wall = ref 0. in
  let results =
    match !fatal with
    | Some f ->
        Array.init n (fun jx ->
            match failed.(jx) with Some f0 -> Error f0 | None -> Error f)
    | None ->
        Array.init n (fun jx ->
            match failed.(jx) with
            | Some f -> Error f
            | None -> (
                match runners.(jx) with
                | Some r -> (
                    let t0 = Unix.gettimeofday () in
                    match r.r_finish () with
                    | rep ->
                        merge_wall :=
                          !merge_wall +. (Unix.gettimeofday () -. t0);
                        Ok rep
                    | exception e ->
                        merge_wall :=
                          !merge_wall +. (Unix.gettimeofday () -. t0);
                        Error (capture e))
                | None -> (
                    match ordered_made.(jx) with
                    | Some (_, finish) -> (
                        match finish () with
                        | r -> Ok r
                        | exception e -> Error (capture e))
                    | None -> assert false)))
  in
  let sum a = Array.fold_left ( +. ) 0. a in
  let stats =
    {
      rs_domains = domains;
      rs_shards = n_shards;
      rs_batch = window;
      rs_chunks = c;
      rs_events = Reader.n_events reader;
      rs_decode_s = sum decode_s;
      rs_ordered_s = sum ordered_s;
      rs_shard_s = sum shard_s;
      rs_merge_s = !merge_wall;
      rs_peak_live_chunks = !peak_live;
    }
  in
  let timings =
    List.init domains (fun d ->
        {
          domain = d;
          (* the pipeline shares every job across workers; list them once,
             on the caller's row *)
          jobs =
            (if d = 0 then Array.to_list (Array.map (fun j -> j.name) jobs)
             else []);
          wall_s = wall.(d);
        })
  in
  (results, stats, timings)

let parallel ?domains ?shards ?batch ?timings ?stats reader jobs_l =
  let jobs = Array.of_list jobs_l in
  let n = Array.length jobs in
  if n = 0 then begin
    Option.iter (fun report -> report []) timings;
    []
  end
  else begin
    let hw = Domain.recommended_domain_count () in
    let c = Reader.n_chunks reader in
    (* one shared pool for decode + analysis: never oversubscribe the
       machine — extra domains beyond the hardware only add contention *)
    let d =
      match domains with Some d -> max 1 (min d hw) | None -> max 1 hw
    in
    let any_sharded = Array.exists (fun j -> j.sharded <> None) jobs in
    let n_shards =
      match shards with
      | Some s -> max 1 (min s (max 1 c))
      | None -> max 1 (min d (max 1 c))
    in
    let window = match batch with Some b -> max 1 b | None -> max 4 (2 * d) in
    (* Single-pass fast path: nothing to pipeline (no chunks), no
       parallelism and no sharding requested, or a singleton job that cannot
       shard — stream the trace once through every job on this domain and
       spawn nothing. *)
    let single =
      c = 0
      || (d = 1 && (n_shards = 1 || not any_sharded))
      || (n = 1 && not any_sharded)
    in
    if single then begin
      let t0 = Unix.gettimeofday () in
      let outs =
        run_group_with ~iter:(fun per_tag -> Reader.iter_tags reader per_tag)
          jobs
      in
      let wall_s = Unix.gettimeofday () -. t0 in
      Option.iter
        (fun report ->
          report
            [
              {
                domain = 0;
                jobs = Array.to_list (Array.map (fun j -> j.name) jobs);
                wall_s;
              };
            ])
        timings;
      Option.iter
        (fun report ->
          report
            {
              rs_domains = 1;
              rs_shards = 1;
              rs_batch = 0;
              rs_chunks = c;
              rs_events = Reader.n_events reader;
              rs_decode_s = 0.;
              rs_ordered_s = wall_s;
              rs_shard_s = 0.;
              rs_merge_s = 0.;
              rs_peak_live_chunks = 0;
            })
        stats;
      Array.to_list (Array.mapi (fun i j -> (j.name, outs.(i))) jobs)
    end
    else begin
      let results, st, td = run_pipeline ~domains:d ~n_shards ~window reader jobs in
      Option.iter (fun report -> report td) timings;
      Option.iter (fun report -> report st) stats;
      Array.to_list (Array.mapi (fun i j -> (j.name, results.(i))) jobs)
    end
  end

let check_program reader prog =
  let recorded = Reader.fingerprint reader in
  if Int64.equal recorded 0L then Ok () (* recorder did not know the program *)
  else
    let actual = Tq_vm.Program.fingerprint prog in
    if Int64.equal recorded actual then Ok ()
    else
      Error
        (Printf.sprintf
           "trace was recorded from a different program (trace fingerprint \
            %016Lx, program fingerprint %016Lx); re-record or replay against \
            the original binary"
           recorded actual)
