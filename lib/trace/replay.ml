type job = {
  name : string;
  wants : Event.kind list;
  make : unit -> (Event.t -> unit) * (unit -> string);
}

type failure = { exn : exn; backtrace : string }
type outcome = (string, failure) result
type domain_timing = { domain : int; jobs : string list; wall_s : float }

let job ?(wants = Event.all_kinds) name make = { name; wants; make }

let capture exn = { exn; backtrace = Printexc.get_backtrace () }

let failure_message f =
  match f.exn with
  | Reader.Format_error msg -> "trace unreadable: " ^ msg
  | e -> Printexc.to_string e

let is_trace_error f =
  match f.exn with Reader.Format_error _ -> true | _ -> false

let wanted_tags j =
  let w = Array.make Event.n_kinds false in
  List.iter (fun k -> w.(Event.kind_tag k) <- true) j.wants;
  w

(* Unrolled fan-out for the common arities: the dispatch runs once per event
   tag occurrence, and binding each sink directly beats an Array.iter per
   event. *)
let fuse = function
  | [||] -> fun (_ : Event.t) -> ()
  | [| s0 |] -> s0
  | [| s0; s1 |] -> fun ev -> s0 ev; s1 ev
  | [| s0; s1; s2 |] -> fun ev -> s0 ev; s1 ev; s2 ev
  | [| s0; s1; s2; s3 |] ->
      fun ev ->
        s0 ev;
        s1 ev;
        s2 ev;
        s3 ev
  | [| s0; s1; s2; s3; s4 |] ->
      fun ev ->
        s0 ev;
        s1 ev;
        s2 ev;
        s3 ev;
        s4 ev
  | [| s0; s1; s2; s3; s4; s5 |] ->
      fun ev ->
        s0 ev;
        s1 ev;
        s2 ev;
        s3 ev;
        s4 ev;
        s5 ev
  | sinks -> fun ev -> Array.iter (fun s -> s ev) sinks

(* One job, one decode pass, every exception captured: a raising tool (or a
   trace that fails its CRC check mid-iteration) becomes this job's [Error],
   not an abort of the caller. *)
let run_job reader j =
  match
    let sink, finish = j.make () in
    let wanted = wanted_tags j in
    if Array.for_all Fun.id wanted then Reader.iter reader sink
    else Reader.iter reader (fun ev -> if wanted.(Event.tag ev) then sink ev);
    finish ()
  with
  | report -> Ok report
  | exception e -> Error (capture e)

let sequential ?timings reader jobs =
  match timings with
  | None -> List.map (fun j -> (j.name, run_job reader j)) jobs
  | Some report ->
      let timed = ref [] in
      let results =
        List.map
          (fun j ->
            let t0 = Unix.gettimeofday () in
            let out = run_job reader j in
            let wall_s = Unix.gettimeofday () -. t0 in
            timed := { domain = 0; jobs = [ j.name ]; wall_s } :: !timed;
            (j.name, out))
          jobs
      in
      report (List.rev !timed);
      results

(* Run one group of jobs through a single dispatch pass.  Each event tag
   gets its own fused sink over the jobs that declared interest in it, so a
   tool never sees (and never pays a call for) events it would discard.
   [iter] supplies the pass itself — [Reader.iter_tags] for the in-process
   replay paths, the decoded-chunk cache walk for the serve layer — and
   must deliver every event to the sink at the event's tag.

   Supervision: each job's sink is guarded — a raising tool is retired from
   the rest of the pass (its sink becomes a no-op) and comes back as [Error],
   instead of poisoning the whole group.  Only a failure of the dispatch pass
   itself (an unreadable trace) fails every job still live in the group. *)
let run_group_with ~iter group =
  let n = Array.length group in
  let made =
    Array.map
      (fun j -> match j.make () with m -> Ok m | exception e -> Error (capture e))
      group
  in
  let failed = Array.map (function Ok _ -> None | Error f -> Some f) made in
  let alive = Array.map Option.is_none failed in
  let guard i raw_sink ev =
    if alive.(i) then
      try raw_sink ev
      with e ->
        alive.(i) <- false;
        failed.(i) <- Some (capture e)
  in
  let per_tag =
    Array.init Event.n_kinds (fun tag ->
        let sinks = ref [] in
        for i = n - 1 downto 0 do
          match made.(i) with
          | Ok (sink, _) when (wanted_tags group.(i)).(tag) ->
              sinks := guard i sink :: !sinks
          | _ -> ()
        done;
        fuse (Array.of_list !sinks))
  in
  (match iter per_tag with
  | () -> ()
  | exception e ->
      let f = capture e in
      Array.iteri (fun i live -> if live then failed.(i) <- Some f) alive);
  Array.mapi
    (fun i m ->
      match (failed.(i), m) with
      | Some f, _ | None, Error f -> Error f
      | None, Ok (_, finish) -> (
          match finish () with r -> Ok r | exception e -> Error (capture e)))
    made

let run_group reader group =
  run_group_with ~iter:(fun per_tag -> Reader.iter_tags reader per_tag) group

let supervised ~iter jobs =
  let group = Array.of_list jobs in
  let outs = run_group_with ~iter group in
  List.mapi (fun i j -> (j.name, outs.(i))) jobs

let parallel ?domains ?timings reader jobs =
  let jobs = Array.of_list jobs in
  let n = Array.length jobs in
  if n = 0 then (
    Option.iter (fun report -> report []) timings;
    [])
  else begin
    (* Each group pays one decode pass, so never split into more groups
       than the machine can actually run in parallel: extra groups add
       decode work without adding concurrency. *)
    let hw = Domain.recommended_domain_count () in
    let domains =
      match domains with
      | Some d -> max 1 (min (min d hw) n)
      | None -> max 1 (min hw n)
    in
    (* static round-robin partition: group g holds jobs g, g+domains, ... *)
    let group_idxs g =
      let rec go i acc = if i >= n then List.rev acc else go (i + domains) (i :: acc) in
      go g []
    in
    let results =
      Array.make n (Error { exn = Failure "job never ran"; backtrace = "" })
    in
    (* wall_times.(g) is written only by worker g, read only after join *)
    let wall_times = Array.make domains 0. in
    let worker g () =
      let t0 = Unix.gettimeofday () in
      let idxs = group_idxs g in
      (match
         let group = Array.of_list (List.map (fun i -> jobs.(i)) idxs) in
         run_group reader group
       with
      | outs -> List.iteri (fun k i -> results.(i) <- outs.(k)) idxs
      | exception e ->
          (* run_group captures everything it can; this is the backstop so no
             exception ever crosses a domain boundary un-accounted *)
          let f = capture e in
          List.iter (fun i -> results.(i) <- Error f) idxs);
      wall_times.(g) <- Unix.gettimeofday () -. t0
    in
    let spawned =
      List.init (domains - 1) (fun g -> Domain.spawn (worker (g + 1)))
    in
    Fun.protect ~finally:(fun () -> List.iter Domain.join spawned) (worker 0);
    Option.iter
      (fun report ->
        report
          (List.init domains (fun g ->
               { domain = g;
                 jobs = List.map (fun i -> jobs.(i).name) (group_idxs g);
                 wall_s = wall_times.(g) })))
      timings;
    Array.to_list (Array.mapi (fun i j -> (j.name, results.(i))) jobs)
  end

let check_program reader prog =
  let recorded = Reader.fingerprint reader in
  if Int64.equal recorded 0L then Ok () (* recorder did not know the program *)
  else
    let actual = Tq_vm.Program.fingerprint prog in
    if Int64.equal recorded actual then Ok ()
    else
      Error
        (Printf.sprintf
           "trace was recorded from a different program (trace fingerprint \
            %016Lx, program fingerprint %016Lx); re-record or replay against \
            the original binary"
           recorded actual)
