(** Drive analysis tools from a recorded trace — sequentially or fanned out
    over OCaml 5 domains.

    A {!job} is a named factory: it builds a fresh tool instance, returns its
    event sink and a [finish] callback producing the tool's rendered result.
    The factory runs inside the domain that executes the job, so every
    tool's mutable state is confined to one domain; the {!Reader.t} itself
    is immutable and safely shared. *)

type job = {
  name : string;
  wants : Event.kind list;
      (** event kinds the sink consumes; events of other kinds are never
          delivered to it *)
  make : unit -> (Event.t -> unit) * (unit -> string);
}

val job :
  ?wants:Event.kind list ->
  string ->
  (unit -> (Event.t -> unit) * (unit -> string)) ->
  job
(** [wants] defaults to {!Event.all_kinds}.  Narrowing it to the kinds the
    tool actually consumes (its [consume] match arms that do work) lets the
    replay driver skip the sink call for the rest; it must stay a superset
    of the consumed kinds or the tool silently loses events. *)

val sequential : Reader.t -> job list -> (string * string) list
(** Replay the trace once per job, in order, on the current domain. *)

val parallel : ?domains:int -> Reader.t -> job list -> (string * string) list
(** Fan the jobs out over up to [domains] domains (default
    [Domain.recommended_domain_count]; always capped at the job count and
    at [Domain.recommended_domain_count] — each extra domain costs a full
    decode pass, so oversubscribing the machine only adds work).  Jobs are
    partitioned round-robin; each domain decodes the trace {e once} and
    dispatches each event to the sinks of those of its jobs that declared
    interest in the event's kind, so the decode cost is paid per domain,
    not per job.  Results come back in job order.  The first exception
    raised by any group is re-raised after all domains are joined (an
    exception aborts that whole group's pass). *)

val check_program : Reader.t -> Tq_vm.Program.t -> (unit, string) result
(** Does this trace belong to this program?  [Error] explains a fingerprint
    mismatch; a trace stamped with fingerprint [0L] (recorder did not know
    the program) is accepted. *)
