(** Drive analysis tools from a recorded trace — sequentially, or through a
    sharded streaming pipeline over OCaml 5 domains — with per-job fault
    isolation.

    A {!job} is a named factory: it builds a fresh tool instance, returns its
    event sink and a [finish] callback producing the tool's rendered result.
    A job may additionally carry a {!sharded} capability — a recipe for
    splitting the tool across trace ranges whose partial states merge back
    into the sequential result — which lets {!parallel} run a single tool on
    several domains at once.

    Every job comes back as an {!outcome}: a raising tool is captured as
    that job's [Error] (exception + backtrace) instead of aborting the whole
    run, so one broken analysis cannot take down the other tools'
    byte-identical reports. *)

type ('state, 'seed) shard_spec = {
  prefix_wants : Event.kind list;
      (** event kinds the prefix tracker consumes; [[]] if the tool needs no
          seed (its shards start from nothing) *)
  prefix : unit -> (Event.t -> unit) * (unit -> 'seed);
      (** Build the prefix tracker: a sink fed every [prefix_wants] event of
          the trace {e in order} (it runs inside the pipeline's ordered
          stage), and a snapshot function capturing the tracker's current
          state as a fresh, independent ['seed].  The snapshot is taken at
          each shard boundary, so it must be callable repeatedly and cheap —
          e.g. {!Tq_prof.Call_stack.copy} for stack-dependent tools. *)
  shard : 'seed -> (Event.t -> unit) * (unit -> 'state);
      (** Build one shard from the seed captured at its range's start: a sink
          fed the range's events (filtered by the job's [wants], in order
          within the range) and a finaliser returning the shard's partial
          state. *)
  merge : 'state -> 'state -> unit;
      (** [merge earlier later] absorbs [later] (the state of the adjacent
          {e later} trace range) into [earlier].  {!parallel} folds shard
          states left-to-right, so after the fold the first shard's state
          must equal what a single shard over the whole trace would have
          produced. *)
  render : 'state -> string;
      (** Render the fully-merged state — must produce output byte-identical
          to the job's plain [make]-path report. *)
}
(** How to run one tool as mergeable trace-range shards.  The contract
    behind byte-identical sharded replay:
    [render (merge s_0 s_1 ... s_k)] = the sequential report, where shard
    [i] was built from a seed capturing the prefix tracker's state at the
    range boundary.  Tools that cannot shard (order-sensitive state with no
    merge, e.g. cache simulation) simply don't provide a spec and run in the
    pipeline's ordered stage instead. *)

type sharded = Sharded : ('state, 'seed) shard_spec -> sharded
(** The spec with its state/seed types packed away, so heterogeneous tools
    share one job list. *)

type job = {
  name : string;
  wants : Event.kind list;
      (** event kinds the sink consumes; events of other kinds are never
          delivered to it *)
  make : unit -> (Event.t -> unit) * (unit -> string);
  sharded : sharded option;
      (** if present, {!parallel} may split this job across trace ranges *)
}

type failure = {
  exn : exn;
  backtrace : string;  (** best-effort; empty unless backtraces are on *)
}

type outcome = (string, failure) result
(** [Ok report] — the tool's rendered result, byte-identical to a live
    instrumented run; [Error f] — the tool's factory, sink, finish or merge
    raised, or the decode pass feeding it found the trace unreadable. *)

val job :
  ?wants:Event.kind list ->
  ?sharded:sharded ->
  string ->
  (unit -> (Event.t -> unit) * (unit -> string)) ->
  job
(** [wants] defaults to {!Event.all_kinds}.  Narrowing it to the kinds the
    tool actually consumes (its [consume] match arms that do work) lets the
    replay driver skip the sink call for the rest; it must stay a superset
    of the consumed kinds or the tool silently loses events.  [sharded], if
    given, lets {!parallel} shard the job across trace ranges; the spec's
    reports must be byte-identical to the [make] path's. *)

type domain_timing = {
  domain : int;  (** worker index; [0] is the caller's own domain *)
  jobs : string list;
      (** names of the jobs the worker ran.  {!sequential} reports one entry
          per job; the {!parallel} pipeline shares every job across its
          workers and lists them all on domain [0]'s row. *)
  wall_s : float;  (** wall time of the worker's whole stay in the pipeline *)
}
(** Where the replay wall time went.  The straggler's [wall_s] bounds the
    run. *)

type run_stats = {
  rs_domains : int;  (** workers actually used (caller included) *)
  rs_shards : int;  (** trace ranges per sharded job *)
  rs_batch : int;  (** decode window (chunks decoded ahead); [0] = unbounded
                       single-pass mode *)
  rs_chunks : int;
  rs_events : int;
  rs_decode_s : float;  (** summed across domains: chunk decode + CRC *)
  rs_ordered_s : float;  (** ordered stage: non-sharded sinks + seed prefix *)
  rs_shard_s : float;  (** sharded tool sinks, summed across domains *)
  rs_merge_s : float;  (** post-join shard-state merges + renders *)
  rs_peak_live_chunks : int;
      (** high-water mark of decoded chunks held at once — the pipeline's
          actual queue depth, bounded by the decode window plus in-flight
          consumers *)
}
(** One pipeline run's shape and per-stage cost, for the run manifest's
    [replay] section and the bench's scaling tables. *)

val failure_message : failure -> string
(** One-line rendering of a failure ({!Reader.Format_error} is labelled as an
    unreadable trace). *)

val is_trace_error : failure -> bool
(** Did this job fail because the trace itself was unreadable
    ({!Reader.Format_error}) rather than because the tool raised? *)

val dispatch : (Event.t -> unit) array -> Event.t array -> unit
(** [dispatch per_tag evs] walks a decoded chunk, handing each event to the
    sink at its {!Event.tag} — the inner loop of the pipeline's ordered
    stage, exported so the serve layer's decoded-chunk-cache pass is the
    same code. *)

val supervised :
  iter:((Event.t -> unit) array -> unit) ->
  job list ->
  (string * outcome) list
(** Run one supervised job group over a caller-supplied dispatch pass, on
    the current domain.  [iter] receives one fused, guarded sink per event
    tag ({!Event.n_kinds} of them, indexed by {!Event.tag}) and must deliver
    every event of the trace to the sink at its tag — {!Reader.iter_tags}
    partially applied is the canonical pass; the serve layer's
    decoded-chunk-cache walk (built on {!dispatch}) is another.
    Supervision matches {!parallel}: a job whose factory, sink or finish
    raises is retired and reported as its own [Error]; an exception escaping
    [iter] itself fails every job still live.  Never raises. *)

val sequential :
  ?timings:(domain_timing list -> unit) ->
  Reader.t ->
  job list ->
  (string * outcome) list
(** Replay the trace once per job, in order, on the current domain — the
    oracle the sharded pipeline is checked against.  Never raises on a
    failing job or an unreadable trace — each job's result is its own
    {!outcome}.  [timings], if given, receives one {!domain_timing} per job
    (all on domain [0]) before the call returns. *)

val parallel :
  ?domains:int ->
  ?shards:int ->
  ?batch:int ->
  ?timings:(domain_timing list -> unit) ->
  ?stats:(run_stats -> unit) ->
  Reader.t ->
  job list ->
  (string * outcome) list
(** Replay through the sharded streaming pipeline.  Every chunk is decoded
    and CRC-verified {e exactly once} into a pooled slot; the chunks then
    flow through two kinds of consumers running concurrently on one shared
    domain pool:

    - the {e ordered stage} — a single token walks the chunks in trace
      order, feeding non-sharded jobs' sinks and the sharded jobs' seed
      prefix trackers, and snapshotting shard seeds at range boundaries;
    - {e shard items} — each sharded job is split into [shards]
      event-balanced chunk ranges; a range starts once its seed is
      snapshotted and consumes its chunks as they decode, possibly far
      ahead of the ordered token.

    Decoded chunks are refcounted and freed once the ordered stage and
    every sharded job have walked them; decode runs at most [batch] chunks
    (default [max 4 (2*domains)]) ahead of the slowest consumer, so memory
    stays bounded.  Results come back in job order, reports byte-identical
    to {!sequential}.

    [domains] defaults to [Domain.recommended_domain_count ()] and is
    always capped by it — decode and analysis share the one pool, so
    oversubscribing the machine only adds work.  [shards] defaults to the
    domain count (capped at the chunk count); [shards > 1] with
    [domains = 1] still runs the full pipeline on the calling domain, which
    keeps the shard/merge path exercisable on any machine.  No domain is
    spawned for an empty job list, a singleton non-shardable job, or a
    [domains = 1] run without sharding — those stream the trace once on the
    calling domain.

    Supervision: a job whose factory, sink, merge or finish raises is
    retired (its remaining shard ranges drain without work) and reported as
    [Error]; the other jobs run to completion.  Only an unreadable trace
    (chunk decode raising {!Reader.Format_error}) fails every job still
    live.  No exception escapes a domain.

    [timings], if given, receives one {!domain_timing} per worker;
    [stats] receives the pipeline's {!run_stats} — both before the call
    returns. *)

val check_program : Reader.t -> Tq_vm.Program.t -> (unit, string) result
(** Does this trace belong to this program?  [Error] explains a fingerprint
    mismatch; a trace stamped with fingerprint [0L] (recorder did not know
    the program) is accepted. *)
