(** Drive analysis tools from a recorded trace — sequentially or fanned out
    over OCaml 5 domains — with per-job fault isolation.

    A {!job} is a named factory: it builds a fresh tool instance, returns its
    event sink and a [finish] callback producing the tool's rendered result.
    The factory runs inside the domain that executes the job, so every
    tool's mutable state is confined to one domain; the {!Reader.t} itself
    is immutable and safely shared.

    Every job comes back as an {!outcome}: a raising tool is captured as
    that job's [Error] (exception + backtrace) instead of aborting its whole
    domain group, so one broken analysis cannot take down the other tools'
    byte-identical reports. *)

type job = {
  name : string;
  wants : Event.kind list;
      (** event kinds the sink consumes; events of other kinds are never
          delivered to it *)
  make : unit -> (Event.t -> unit) * (unit -> string);
}

type failure = {
  exn : exn;
  backtrace : string;  (** best-effort; empty unless backtraces are on *)
}

type outcome = (string, failure) result
(** [Ok report] — the tool's rendered result, byte-identical to a live
    instrumented run; [Error f] — the tool's factory, sink or finish raised,
    or the decode pass feeding it found the trace unreadable. *)

val job :
  ?wants:Event.kind list ->
  string ->
  (unit -> (Event.t -> unit) * (unit -> string)) ->
  job
(** [wants] defaults to {!Event.all_kinds}.  Narrowing it to the kinds the
    tool actually consumes (its [consume] match arms that do work) lets the
    replay driver skip the sink call for the rest; it must stay a superset
    of the consumed kinds or the tool silently loses events. *)

type domain_timing = {
  domain : int;  (** worker index; [0] is the caller's own domain *)
  jobs : string list;  (** names of the jobs the worker ran, in run order *)
  wall_s : float;  (** wall time of the worker's whole decode+dispatch pass *)
}
(** Where the replay wall time went.  {!parallel} reports one entry per
    worker group (the straggler's [wall_s] bounds the run); {!sequential}
    reports one entry per job, all on domain [0]. *)

val failure_message : failure -> string
(** One-line rendering of a failure ({!Reader.Format_error} is labelled as an
    unreadable trace). *)

val is_trace_error : failure -> bool
(** Did this job fail because the trace itself was unreadable
    ({!Reader.Format_error}) rather than because the tool raised? *)

val supervised :
  iter:((Event.t -> unit) array -> unit) ->
  job list ->
  (string * outcome) list
(** Run one supervised job group over a caller-supplied dispatch pass, on
    the current domain.  [iter] receives one fused, guarded sink per event
    tag ({!Event.n_kinds} of them, indexed by {!Event.tag}) and must deliver
    every event of the trace to the sink at its tag — {!Reader.iter_tags}
    partially applied is the canonical pass; the serve layer's
    decoded-chunk-cache walk is another.  Supervision matches {!parallel}:
    a job whose factory, sink or finish raises is retired and reported as
    its own [Error]; an exception escaping [iter] itself fails every job
    still live.  Never raises. *)

val sequential :
  ?timings:(domain_timing list -> unit) ->
  Reader.t ->
  job list ->
  (string * outcome) list
(** Replay the trace once per job, in order, on the current domain.  Never
    raises on a failing job or an unreadable trace — each job's result is
    its own {!outcome}.  [timings], if given, receives one
    {!domain_timing} per job (all on domain [0]) before the call returns. *)

val parallel :
  ?domains:int ->
  ?timings:(domain_timing list -> unit) ->
  Reader.t ->
  job list ->
  (string * outcome) list
(** Fan the jobs out over up to [domains] domains (default
    [Domain.recommended_domain_count]; always capped at the job count and
    at [Domain.recommended_domain_count] — each extra domain costs a full
    decode pass, so oversubscribing the machine only adds work).  Jobs are
    partitioned round-robin; each domain decodes the trace {e once} and
    dispatches each event to the sinks of those of its jobs that declared
    interest in the event's kind, so the decode cost is paid per domain,
    not per job.  Results come back in job order.

    Supervision: a job whose sink raises is retired from the rest of its
    group's decode pass and reported as [Error]; the group's other jobs run
    to completion.  Only an unreadable trace (the decode pass itself raising
    {!Reader.Format_error}) fails every job still live in that group.  No
    exception escapes a domain.

    [timings], if given, receives one {!domain_timing} per worker group
    (ordered by worker index) before the call returns — the raw material
    for a manifest's ["replay"] section and for spotting load imbalance. *)

val check_program : Reader.t -> Tq_vm.Program.t -> (unit, string) result
(** Does this trace belong to this program?  [Error] explains a fingerprint
    mismatch; a trace stamped with fingerprint [0L] (recorder did not know
    the program) is accepted. *)
