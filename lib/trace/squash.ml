module Leb = Tq_util.Leb128

(* Record-time redundancy suppression (container v4).

   The event stream of a looping program is dominated by repeated loop-body
   sequences: the same basic blocks, the same loads and stores, only the
   numeric operands (instruction counts, addresses) advancing — usually by a
   constant stride per iteration.  This module sits between the probe and
   the chunk writer and rewrites such runs into one {e repeat record}: the
   body's events once, an iteration count, and per numeric field either a
   single stride (affine) or the explicit per-iteration deltas (literal).

   Detection is keyed on the engine's own compiled-trace identity: the
   probe forwards each [Block_exec] with the trace id the code cache
   assigned ({!Tq_dbi.Engine.add_trace_instrumenter}), so a "segment" here
   is one dispatched compiled trace plus the events its instructions
   emitted, and a candidate loop body is the segment window between two
   dispatches of the same trace id.  Streams without engine identity
   (hand-built writers, re-encodes) fall back to the block's address as the
   key — same dictionary, coarser name.

   The state machine:

   - {b Idle}: closed segments accumulate in a bounded [pending] window.
     When a segment's key recurs, everything before its previous occurrence
     is flushed as plain events and the tail of the window becomes the
     candidate body of a {b Matching} run.
   - {b Matching}: incoming events are compared structurally
     ({!Event.struct_same}) against the body, position by position.  Each
     completed iteration folds its numeric fields into the per-field
     stride/literal tracker.  A structural mismatch ends the run: if it
     covered enough iterations it is emitted as a repeat record, otherwise
     the buffered raw events are replayed as plain events; either way the
     partial iteration's segments are requeued so an adjacent loop can
     still be detected.

   Everything is bounded: the pending window, the body length, and the raw
   events one record may cover — a run at the cap is flushed and detection
   restarts, costing one uncompressed iteration per cap hit. *)

type field_enc =
  | Affine of int  (** the field advances by this stride every iteration *)
  | Literal of string
      (** concatenated SLEB128 per-iteration deltas, [iters - 1] of them *)

type out = {
  out_plain : Event.t -> unit;
  out_repeat : body:Event.t array -> iters:int -> fields:field_enc array -> unit;
}

(* One closed segment: a boundary event (dictionary key [s_key]) plus the
   events that followed it, reversed. *)
type seg = { s_key : int; s_evs : Event.t list; s_n : int }

type field = {
  mutable f_prev : int;  (* value in the latest completed iteration *)
  mutable f_stride : int;  (* meaningful once iters >= 2 *)
  mutable f_lits : Buffer.t option;  (* [Some] = literal mode *)
}

type run = {
  r_body : Event.t array;  (* iteration 0 *)
  r_key : int array;  (* r_key.(k): segment key if body.(k) opens one, else 0 *)
  r_bound : bool array;  (* r_bound.(k): body.(k) is a segment boundary *)
  r_foff : int array;  (* field offset of body event k; r_foff.(B) = total *)
  r_fields : field array;
  r_stage : int array;  (* numeric fields of the in-progress iteration *)
  mutable r_iters : int;  (* completed iterations, body included *)
  mutable r_pos : int;  (* next body position expected *)
  mutable r_committed : bool;
  mutable r_raw : Event.t list;  (* reversed raw copies until commitment *)
  mutable r_cur : Event.t list;  (* reversed events of the open iteration *)
}

type state = Idle | Matching of run

type t = {
  o : out;
  min_iters : int;
  min_raw : int;
  max_body : int;
  max_raw : int;
  mutable pending : seg list;  (* reversed: newest segment first *)
  mutable pending_events : int;
  mutable cur : (int * Event.t list * int) option;  (* key, rev events, count *)
  mutable st : state;
}

let create ?(min_iters = 2) ?(min_raw = 32) ?(max_body = 512)
    ?(max_raw = 65536) o =
  if min_iters < 2 then invalid_arg "Trace.Squash.create: min_iters < 2";
  if max_body < 1 || max_raw < max_body then
    invalid_arg "Trace.Squash.create: bad caps";
  {
    o;
    min_iters;
    min_raw;
    max_body;
    max_raw;
    pending = [];
    pending_events = 0;
    cur = None;
    st = Idle;
  }

let emit_seg_plain t s = List.iter t.o.out_plain (List.rev s.s_evs)

(* Flush the oldest half of the pending window as plain events.  Called when
   the window overflows; halving (instead of popping one) keeps the
   amortized cost per segment constant. *)
let shrink_pending t =
  let segs = List.rev t.pending in  (* oldest first *)
  let n = List.length segs in
  let drop = max 1 ((n + 1) / 2) in
  let rec go i = function
    | s :: rest when i < drop ->
        emit_seg_plain t s;
        t.pending_events <- t.pending_events - s.s_n;
        go (i + 1) rest
    | rest -> rest
  in
  let kept = go 0 segs in
  t.pending <- List.rev kept

let push_seg t s =
  t.pending <- s :: t.pending;
  t.pending_events <- t.pending_events + s.s_n;
  while t.pending_events > t.max_body do
    shrink_pending t
  done

let close_cur t =
  match t.cur with
  | None -> ()
  | Some (key, evs, n) ->
      t.cur <- None;
      push_seg t { s_key = key; s_evs = evs; s_n = n }

(* ---------- run construction ---------- *)

let make_run body_segs =
  (* [body_segs] oldest first *)
  let body =
    Array.of_list (List.concat_map (fun s -> List.rev s.s_evs) body_segs)
  in
  let b = Array.length body in
  let key = Array.make b 0 and bound = Array.make b false in
  let k = ref 0 in
  List.iter
    (fun s ->
      key.(!k) <- s.s_key;
      bound.(!k) <- true;
      k := !k + s.s_n)
    body_segs;
  let foff = Array.make (b + 1) 0 in
  for i = 0 to b - 1 do
    foff.(i + 1) <- foff.(i) + Event.num_fields body.(i)
  done;
  let nf = foff.(b) in
  let vals = Array.make (max nf 1) 0 in
  for i = 0 to b - 1 do
    ignore (Event.read_num_fields body.(i) vals foff.(i))
  done;
  {
    r_body = body;
    r_key = key;
    r_bound = bound;
    r_foff = foff;
    r_fields =
      Array.init nf (fun f ->
          { f_prev = vals.(f); f_stride = 0; f_lits = None });
    r_stage = Array.make (max nf 1) 0;
    r_iters = 1;
    r_pos = 0;
    r_committed = false;
    r_raw = [];
    r_cur = [];
  }

(* ---------- run teardown ---------- *)

let flush_run t run =
  if run.r_committed then begin
    let fields =
      Array.map
        (fun f ->
          match f.f_lits with
          | Some b -> Literal (Buffer.contents b)
          | None -> Affine f.f_stride)
        run.r_fields
    in
    t.o.out_repeat ~body:run.r_body ~iters:run.r_iters ~fields
  end
  else begin
    Array.iter t.o.out_plain run.r_body;
    List.iter t.o.out_plain (List.rev run.r_raw)
  end

(* Requeue the open iteration's events (they matched the body structurally
   up to [r_pos], so their segment boundaries and keys are the body's own)
   back into the pending window: the events after a broken run are live
   material for detecting the next loop. *)
let requeue_partial t run =
  let evs = Array.of_list (List.rev run.r_cur) in
  let n = Array.length evs in
  let i = ref 0 in
  while !i < n do
    let start = !i in
    incr i;
    while !i < n && not run.r_bound.(!i) do
      incr i
    done;
    let seg_evs = ref [] in
    for j = start to !i - 1 do
      seg_evs := evs.(j) :: !seg_evs
    done;
    if run.r_bound.(start) then begin
      if !i < n then
        push_seg t
          { s_key = run.r_key.(start); s_evs = !seg_evs; s_n = !i - start }
      else
        (* the last, still-open segment: subsequent events belong to it *)
        t.cur <- Some (run.r_key.(start), !seg_evs, !i - start)
    end
    else
      (* events before the first boundary can only exist if the body itself
         started mid-segment — it cannot (bodies start at a boundary) — but
         degrade gracefully rather than assert *)
      List.iter t.o.out_plain (List.rev !seg_evs)
  done

let do_break t run =
  flush_run t run;
  t.st <- Idle;
  t.pending <- [];
  t.pending_events <- 0;
  t.cur <- None;
  requeue_partial t run

(* ---------- matching ---------- *)

let complete_iteration t run =
  let nf = run.r_foff.(Array.length run.r_body) in
  if run.r_iters = 1 then
    for f = 0 to nf - 1 do
      let fld = run.r_fields.(f) in
      fld.f_stride <- run.r_stage.(f) - fld.f_prev;
      fld.f_prev <- run.r_stage.(f)
    done
  else
    for f = 0 to nf - 1 do
      let fld = run.r_fields.(f) in
      let v = run.r_stage.(f) in
      (match fld.f_lits with
      | None ->
          if v <> fld.f_prev + fld.f_stride then begin
            (* the field just went irregular: materialize the deltas of the
               earlier iterations (all equal to the stride) and escape to
               literal mode *)
            let b = Buffer.create 16 in
            for _ = 1 to run.r_iters - 1 do
              Leb.write_s b fld.f_stride
            done;
            Leb.write_s b (v - fld.f_prev);
            fld.f_lits <- Some b
          end
      | Some b -> Leb.write_s b (v - fld.f_prev));
      fld.f_prev <- v
    done;
  run.r_iters <- run.r_iters + 1;
  run.r_pos <- 0;
  let b = Array.length run.r_body in
  if not run.r_committed then begin
    run.r_raw <- List.rev_append (List.rev run.r_cur) run.r_raw;
    if run.r_iters >= t.min_iters && run.r_iters * b >= t.min_raw then begin
      run.r_committed <- true;
      run.r_raw <- []
    end
  end;
  run.r_cur <- [];
  if (run.r_iters + 1) * b > t.max_raw then begin
    (* the next iteration would overflow the record: flush and restart
       detection (costs one plain iteration per cap hit) *)
    flush_run t run;
    t.st <- Idle
  end

(* Try to advance the run with [ev]; false = structural mismatch (the caller
   breaks the run and re-dispatches [ev] through the idle path). *)
let match_ev t run ev =
  let k = run.r_pos in
  let tmpl = run.r_body.(k) in
  if Event.struct_same tmpl ev then begin
    ignore (Event.read_num_fields ev run.r_stage run.r_foff.(k));
    run.r_cur <- ev :: run.r_cur;
    run.r_pos <- k + 1;
    if run.r_pos = Array.length run.r_body then complete_iteration t run;
    true
  end
  else false

(* ---------- idle-path dispatch ---------- *)

let idle_plain t ev =
  match t.cur with
  | Some (key, evs, n) -> t.cur <- Some (key, ev :: evs, n + 1)
  | None ->
      (* events before the first boundary never join a body *)
      t.o.out_plain ev

let find_key pending key =
  (* [pending] is newest-first; the first hit is the latest occurrence.
     Walking newest-to-oldest while consing means [s :: acc] comes out
     oldest-first — exactly the body order [make_run] wants. *)
  let rec go acc = function
    | [] -> None
    | s :: rest ->
        if s.s_key = key then Some (s :: acc, rest)
        else go (s :: acc) rest
  in
  go [] pending

let idle_boundary t key ev =
  close_cur t;
  match find_key t.pending key with
  | Some (body_segs, older)
    when Event.struct_same (List.hd (List.rev (List.hd body_segs).s_evs)) ev ->
      (* flush everything older than the candidate body, keep the body *)
      List.iter (emit_seg_plain t) (List.rev older);
      t.pending <- [];
      t.pending_events <- 0;
      let run = make_run body_segs in
      t.st <- Matching run;
      (* [ev] is the first event of iteration 1; its structural match was
         just checked, so this cannot break *)
      ignore (match_ev t run ev)
  | _ -> t.cur <- Some (key, [ ev ], 1)

(* ---------- public entry points ---------- *)

let rec feed_boundary t ~key ev =
  match t.st with
  | Matching run ->
      if not (match_ev t run ev) then begin
        do_break t run;
        feed_boundary t ~key ev
      end
  | Idle -> idle_boundary t key ev

let feed t ev =
  match ev with
  | Event.Block_exec { addr; _ } -> feed_boundary t ~key:addr ev
  | _ -> (
      match t.st with
      | Matching run ->
          if not (match_ev t run ev) then begin
            do_break t run;
            idle_plain t ev
          end
      | Idle -> idle_plain t ev)

let flush t =
  (match t.st with
  | Matching run ->
      flush_run t run;
      t.st <- Idle;
      List.iter t.o.out_plain (List.rev run.r_cur)
  | Idle -> ());
  List.iter (emit_seg_plain t) (List.rev t.pending);
  t.pending <- [];
  t.pending_events <- 0;
  (match t.cur with
  | Some (_, evs, _) -> List.iter t.o.out_plain (List.rev evs)
  | None -> ());
  t.cur <- None
