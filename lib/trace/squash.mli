(** Record-time redundancy suppression — the v4 container's compressor.

    Loop-dominated executions emit the same loop-body event sequence over
    and over, only the numeric operands (instruction counts, addresses,
    stack pointers, lengths) advancing — usually by a constant stride per
    iteration.  This module detects such runs online, as the probe emits
    events, and hands {!Writer} either plain events (in order) or whole
    {e repeat records}: the body's events once, an iteration count, and per
    numeric field either one affine stride or the literal per-iteration
    deltas (see docs/TRACE.md for the wire encoding, {!Event.num_fields}
    for the canonical field order).

    Detection is keyed on the engine's compiled-trace identity: the probe
    feeds each block dispatch through {!feed_boundary} with the trace id
    the code cache assigned, so a candidate body is the segment window
    between two dispatches of the same compiled trace.  {!feed} falls back
    to the block address as the key for streams without engine identity
    (hand-built writers, container re-encodes).

    Guarantees: the concatenation of everything flushed — plain events plus
    each repeat record expanded to [iters] copies of its body with the
    field tables applied — is exactly the input event stream, in order.
    Memory is bounded by the pending window, the body cap and the
    uncommitted-iteration buffer; a run reaching the raw-event cap is
    flushed and detection restarts. *)

type field_enc =
  | Affine of int  (** the field advances by this stride every iteration *)
  | Literal of string
      (** concatenated SLEB128 per-iteration deltas, [iters - 1] of them *)

type out = {
  out_plain : Event.t -> unit;  (** one event the suppressor won't elide *)
  out_repeat : body:Event.t array -> iters:int -> fields:field_enc array -> unit;
      (** a committed run: [body] repeated [iters] times ([iters >= 2],
          body included), [fields] aligned with the flattened
          {!Event.num_fields} of the body's events *)
}

type t

val create :
  ?min_iters:int ->
  ?min_raw:int ->
  ?max_body:int ->
  ?max_raw:int ->
  out ->
  t
(** [min_iters] (default 2) and [min_raw] (default 32): a run is committed
    to a repeat record once it covers at least [min_iters] iterations {e
    and} [min_raw] raw events — shorter runs replay as plain events (tiny
    repeat chunks would cost more than they save).  [max_body] (default
    512): cap on body length in events, also the pending-window size.
    [max_raw] (default 65536): cap on raw events covered by one record
    (bounds the decoder's per-chunk expansion).
    @raise Invalid_argument on nonsensical caps. *)

val feed : t -> Event.t -> unit
(** Feed one event.  [Block_exec] events are treated as segment boundaries
    keyed by their address. *)

val feed_boundary : t -> key:int -> Event.t -> unit
(** Feed a block-dispatch event using [key] (the engine's compiled-trace
    id) as the dictionary key instead of the block address. *)

val flush : t -> unit
(** Flush all buffered state: the open run (as a repeat record if
    committed, else as plain events), the pending window and the open
    segment.  Call exactly once, at end of stream. *)
