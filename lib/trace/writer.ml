module Leb = Tq_util.Leb128
module Crc32 = Tq_util.Crc32

let magic = "TQTRC3\n"
let magic_v2 = "TQTRC2\n"
let chunk_magic = '\xA7'
let trailer_magic = "TQTRIX1\n"
let header_bytes = String.length magic + 8 (* magic + LE program fingerprint *)

type chunk = { c_offset : int; c_first_icount : int; c_events : int }

type t = {
  oc : out_channel;
  tmp : string;  (* the path being written; renamed to [path] on close *)
  path : string;
  chunk_bytes : int;
  payload : Buffer.t;
  mutable st : Event.state;
  mutable chunk_first_icount : int;
  mutable chunk_events : int;
  mutable chunks : chunk list;  (* reversed *)
  mutable written : int;  (* bytes written to [oc] so far *)
  mutable total_events : int;
  mutable closed : bool;
}

let create ?(chunk_bytes = 64 * 1024) ?(fingerprint = 0L) path =
  if chunk_bytes <= 0 then invalid_arg "Trace.Writer.create: chunk_bytes";
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  match
    output_string oc magic;
    let fp = Buffer.create 8 in
    Buffer.add_int64_le fp fingerprint;
    Buffer.output_buffer oc fp
  with
  | () ->
      {
        oc;
        tmp;
        path;
        chunk_bytes;
        payload = Buffer.create (chunk_bytes + 256);
        st = Event.fresh_state ();
        chunk_first_icount = 0;
        chunk_events = 0;
        chunks = [];
        written = header_bytes;
        total_events = 0;
        closed = false;
      }
  | exception e ->
      (* don't leak the channel (or the half-written temp file) when the
         header write fails *)
      close_out_noerr oc;
      (try Sys.remove tmp with Sys_error _ -> ());
      raise e

let flush_chunk w =
  if w.chunk_events > 0 then begin
    let meta = Buffer.create 16 in
    Leb.write_u meta w.chunk_events;
    Leb.write_u meta w.chunk_first_icount;
    Leb.write_u meta (Buffer.length w.payload);
    (* the CRC covers the self-delimiting header fields and the payload —
       everything between the chunk magic and the stored CRC is either
       checksummed or is the checksum *)
    let crc = Crc32.digest (Buffer.contents meta) in
    let crc = Crc32.digest ~crc (Buffer.contents w.payload) in
    output_char w.oc chunk_magic;
    Buffer.output_buffer w.oc meta;
    let cb = Buffer.create 4 in
    Buffer.add_int32_le cb (Int32.of_int crc);
    Buffer.output_buffer w.oc cb;
    Buffer.output_buffer w.oc w.payload;
    w.chunks <-
      {
        c_offset = w.written;
        c_first_icount = w.chunk_first_icount;
        c_events = w.chunk_events;
      }
      :: w.chunks;
    w.written <- w.written + 1 + Buffer.length meta + 4 + Buffer.length w.payload;
    Buffer.clear w.payload;
    w.chunk_events <- 0
  end

let emit w ev =
  if w.closed then invalid_arg "Trace.Writer.emit: closed";
  if w.chunk_events = 0 then begin
    let ic = Event.icount ev in
    w.chunk_first_icount <- ic;
    w.st <- Event.fresh_state ~icount:ic ()
  end;
  Event.encode w.st w.payload ev;
  w.chunk_events <- w.chunk_events + 1;
  w.total_events <- w.total_events + 1;
  if Buffer.length w.payload >= w.chunk_bytes then flush_chunk w

let events w = w.total_events

let close w =
  if not w.closed then begin
    (* mark closed before touching the channel: a failing finalization must
       not leave the writer re-closable (a second close would append a second
       index/trailer to whatever made it to disk) *)
    w.closed <- true;
    match
      flush_chunk w;
      let index_offset = w.written in
      let index = Buffer.create 1024 in
      let chunks = List.rev w.chunks in
      Leb.write_u index (List.length chunks);
      let prev_off = ref 0 and prev_ic = ref 0 in
      List.iter
        (fun c ->
          Leb.write_u index (c.c_offset - !prev_off);
          Leb.write_u index (c.c_first_icount - !prev_ic);
          Leb.write_u index c.c_events;
          prev_off := c.c_offset;
          prev_ic := c.c_first_icount)
        chunks;
      Buffer.output_buffer w.oc index;
      let tr = Buffer.create 16 in
      Buffer.add_int64_le tr (Int64.of_int index_offset);
      Buffer.add_string tr trailer_magic;
      Buffer.output_buffer w.oc tr;
      close_out w.oc
    with
    | () -> Sys.rename w.tmp w.path
    | exception e ->
        (* leave [tmp] on disk: it is the crash artifact salvage understands *)
        close_out_noerr w.oc;
        raise e
  end

let with_file ?chunk_bytes ?fingerprint path f =
  let w = create ?chunk_bytes ?fingerprint path in
  Fun.protect ~finally:(fun () -> close w) (fun () -> f w)
