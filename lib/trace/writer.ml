module Leb = Tq_util.Leb128
module Crc32 = Tq_util.Crc32

let magic = "TQTRC3\n"
let magic_v2 = "TQTRC2\n"
let magic_v4 = "TQTRC4\n"
let chunk_magic = '\xA7'
let repeat_magic = '\xA8'
let body_magic = '\xA9'
let trailer_magic = "TQTRIX1\n"
let header_bytes = String.length magic + 8 (* magic + LE program fingerprint *)

type chunk = { c_offset : int; c_first_icount : int; c_events : int }

type t = {
  oc : out_channel;
  tmp : string;  (* the path being written; renamed to [path] on close *)
  path : string;
  chunk_bytes : int;
  compress : bool;
  payload : Buffer.t;
  mutable squash : Squash.t option;  (* Some iff [compress] *)
  mutable st : Event.state;
  mutable chunk_first_icount : int;
  mutable chunk_events : int;
  mutable chunks : chunk list;  (* reversed *)
  mutable written : int;  (* bytes written to [oc] so far *)
  mutable total_events : int;
  mutable stored_events : int;
  mutable repeat_chunks : int;
  mutable body_chunks : int;
  body_dict : (string, int * int) Hashtbl.t;
      (* body blob -> (def chunk offset, def payload CRC) *)
  mutable dict_bytes : int;
  mutable closed : bool;
}

let create ?(chunk_bytes = 64 * 1024) ?(fingerprint = 0L) ?(compress = false)
    path =
  if chunk_bytes <= 0 then invalid_arg "Trace.Writer.create: chunk_bytes";
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  match
    output_string oc (if compress then magic_v4 else magic);
    let fp = Buffer.create 8 in
    Buffer.add_int64_le fp fingerprint;
    Buffer.output_buffer oc fp
  with
  | () ->
      let w =
        {
          oc;
          tmp;
          path;
          chunk_bytes;
          compress;
          payload = Buffer.create (chunk_bytes + 256);
          squash = None;
          st = Event.fresh_state ();
          chunk_first_icount = 0;
          chunk_events = 0;
          chunks = [];
          written = header_bytes;
          total_events = 0;
          stored_events = 0;
          repeat_chunks = 0;
          body_chunks = 0;
          body_dict = Hashtbl.create 64;
          dict_bytes = 0;
          closed = false;
        }
      in
      w
  | exception e ->
      (* don't leak the channel (or the half-written temp file) when the
         header write fails *)
      close_out_noerr oc;
      (try Sys.remove tmp with Sys_error _ -> ());
      raise e

let flush_chunk w =
  if w.chunk_events > 0 then begin
    let meta = Buffer.create 16 in
    Leb.write_u meta w.chunk_events;
    Leb.write_u meta w.chunk_first_icount;
    Leb.write_u meta (Buffer.length w.payload);
    (* the CRC covers the self-delimiting header fields and the payload —
       everything between the chunk magic and the stored CRC is either
       checksummed or is the checksum.  In v4 it additionally covers the
       chunk-kind byte itself, so a flipped kind byte (plain <-> repeat)
       cannot masquerade as a valid chunk of the other kind. *)
    let crc =
      if w.compress then Crc32.digest (String.make 1 chunk_magic) else 0
    in
    let crc = Crc32.digest ~crc (Buffer.contents meta) in
    let crc = Crc32.digest ~crc (Buffer.contents w.payload) in
    output_char w.oc chunk_magic;
    Buffer.output_buffer w.oc meta;
    let cb = Buffer.create 4 in
    Buffer.add_int32_le cb (Int32.of_int crc);
    Buffer.output_buffer w.oc cb;
    Buffer.output_buffer w.oc w.payload;
    w.chunks <-
      {
        c_offset = w.written;
        c_first_icount = w.chunk_first_icount;
        c_events = w.chunk_events;
      }
      :: w.chunks;
    w.written <- w.written + 1 + Buffer.length meta + 4 + Buffer.length w.payload;
    Buffer.clear w.payload;
    w.chunk_events <- 0
  end

(* Append one event to the open plain chunk (the v2/v3 write path; under
   compression, the events the suppressor decided not to elide). *)
let emit_plain w ev =
  if w.chunk_events = 0 then begin
    let ic = Event.icount ev in
    w.chunk_first_icount <- ic;
    w.st <- Event.fresh_state ~icount:ic ()
  end;
  Event.encode w.st w.payload ev;
  w.chunk_events <- w.chunk_events + 1;
  w.stored_events <- w.stored_events + 1;
  if Buffer.length w.payload >= w.chunk_bytes then flush_chunk w

(* Write one chunk of any kind straight from rendered meta/payload strings.
   Returns the chunk's file offset.  The CRC covers the kind byte, the meta
   and the payload (the v4 rule; see [flush_chunk] for why the kind byte is
   included). *)
let write_raw_chunk w ~kind ~meta ~payload ~events ~first_icount =
  let crc = Crc32.digest (String.make 1 kind) in
  let crc = Crc32.digest ~crc meta in
  let crc = Crc32.digest ~crc payload in
  output_char w.oc kind;
  output_string w.oc meta;
  let cb = Buffer.create 4 in
  Buffer.add_int32_le cb (Int32.of_int crc);
  Buffer.output_buffer w.oc cb;
  output_string w.oc payload;
  let off = w.written in
  w.chunks <-
    { c_offset = off; c_first_icount = first_icount; c_events = events }
    :: w.chunks;
  w.written <- w.written + 1 + String.length meta + 4 + String.length payload;
  off

let render_meta ~n ~first_icount ~payload_len =
  let meta = Buffer.create 16 in
  Leb.write_u meta n;
  Leb.write_u meta first_icount;
  Leb.write_u meta payload_len;
  Buffer.contents meta

(* Interning a loop body: the blob is the body under the standard event
   codec with the delta state seeded at the body's own first instruction
   count.  Because every field of every event is coded relative to that
   state, the same loop body re-entered later (at a different icount, or a
   later outer-loop iteration touching the same addresses) produces the
   same bytes — one body-def chunk then serves every repeat chunk that
   references it.  The dictionary is bounded; overflowing it just means a
   future body gets re-defined, never a wrong reference. *)
let intern_body w ~blob ~b ~first_icount =
  match Hashtbl.find_opt w.body_dict blob with
  | Some entry -> entry
  | None ->
      let payload = Buffer.create (String.length blob + 4) in
      Leb.write_u payload b;
      Buffer.add_string payload blob;
      let payload = Buffer.contents payload in
      let off =
        write_raw_chunk w ~kind:body_magic
          ~meta:(render_meta ~n:0 ~first_icount ~payload_len:(String.length payload))
          ~payload ~events:0 ~first_icount
      in
      let pcrc = Crc32.digest payload in
      w.body_chunks <- w.body_chunks + 1;
      w.stored_events <- w.stored_events + b;
      if
        Hashtbl.length w.body_dict >= 8192
        || w.dict_bytes > 8 * 1024 * 1024
      then begin
        Hashtbl.reset w.body_dict;
        w.dict_bytes <- 0
      end;
      Hashtbl.replace w.body_dict blob (off, pcrc);
      w.dict_bytes <- w.dict_bytes + String.length blob;
      (off, pcrc)

(* Write one repeat chunk: a reference to the interned body-def chunk (file
   offset + payload CRC, so a reference can never silently resolve to the
   wrong body) plus the per-field stride/literal tables.  The header's
   event count is the {e raw} count [B * iters], so the index — and
   everything built on it: [n_events], seeks, shard bounds, the serve chunk
   cache — keeps speaking decoded-event units. *)
let emit_repeat w ~body ~iters ~fields =
  flush_chunk w;
  let b = Array.length body in
  let first_icount = Event.icount body.(0) in
  let blob_buf = Buffer.create 256 in
  let st = Event.fresh_state ~icount:first_icount () in
  Array.iter (fun ev -> Event.encode st blob_buf ev) body;
  let blob = Buffer.contents blob_buf in
  let bref, bcrc = intern_body w ~blob ~b ~first_icount in
  let payload = Buffer.create 128 in
  Leb.write_u payload b;
  Leb.write_u payload iters;
  Leb.write_u payload bref;
  Leb.write_u payload bcrc;
  (* field tables: a literal-mode bitmap (bit f set = field f is literal;
     one mode byte per field would double the table cost of the dominant
     all-affine case), then each field's data in canonical order *)
  let nf = Array.length fields in
  for byte = 0 to ((nf + 7) / 8) - 1 do
    let v = ref 0 in
    for bit = 0 to 7 do
      let f = (byte * 8) + bit in
      if
        f < nf
        && match fields.(f) with Squash.Literal _ -> true | _ -> false
      then v := !v lor (1 lsl bit)
    done;
    Buffer.add_uint8 payload !v
  done;
  Array.iter
    (fun f ->
      match f with
      | Squash.Affine stride -> Leb.write_s payload stride
      | Squash.Literal lits -> Buffer.add_string payload lits)
    fields;
  let payload = Buffer.contents payload in
  let n_raw = b * iters in
  ignore
    (write_raw_chunk w ~kind:repeat_magic
       ~meta:(render_meta ~n:n_raw ~first_icount ~payload_len:(String.length payload))
       ~payload ~events:n_raw ~first_icount);
  w.repeat_chunks <- w.repeat_chunks + 1

let squash w =
  match w.squash with
  | Some sq -> sq
  | None ->
      let sq =
        Squash.create
          {
            Squash.out_plain = (fun ev -> emit_plain w ev);
            out_repeat =
              (fun ~body ~iters ~fields -> emit_repeat w ~body ~iters ~fields);
          }
      in
      w.squash <- Some sq;
      sq

let emit w ev =
  if w.closed then invalid_arg "Trace.Writer.emit: closed";
  w.total_events <- w.total_events + 1;
  if w.compress then Squash.feed (squash w) ev else emit_plain w ev

let emit_boundary w ~trace_id ev =
  if w.closed then invalid_arg "Trace.Writer.emit_boundary: closed";
  w.total_events <- w.total_events + 1;
  if w.compress then Squash.feed_boundary (squash w) ~key:trace_id ev
  else emit_plain w ev

let events w = w.total_events
let stored_events w = w.stored_events
let repeat_chunks w = w.repeat_chunks
let body_chunks w = w.body_chunks
let version w = if w.compress then 4 else 3

let close w =
  if not w.closed then begin
    (* mark closed before touching the channel: a failing finalization must
       not leave the writer re-closable (a second close would append a second
       index/trailer to whatever made it to disk) *)
    w.closed <- true;
    match
      (match w.squash with Some sq -> Squash.flush sq | None -> ());
      flush_chunk w;
      let index_offset = w.written in
      let index = Buffer.create 1024 in
      let chunks = List.rev w.chunks in
      Leb.write_u index (List.length chunks);
      let prev_off = ref 0 and prev_ic = ref 0 in
      List.iter
        (fun c ->
          Leb.write_u index (c.c_offset - !prev_off);
          Leb.write_u index (c.c_first_icount - !prev_ic);
          Leb.write_u index c.c_events;
          prev_off := c.c_offset;
          prev_ic := c.c_first_icount)
        chunks;
      Buffer.output_buffer w.oc index;
      let tr = Buffer.create 16 in
      Buffer.add_int64_le tr (Int64.of_int index_offset);
      Buffer.add_string tr trailer_magic;
      Buffer.output_buffer w.oc tr;
      close_out w.oc
    with
    | () -> Sys.rename w.tmp w.path
    | exception e ->
        (* leave [tmp] on disk: it is the crash artifact salvage understands *)
        close_out_noerr w.oc;
        raise e
  end

let with_file ?chunk_bytes ?fingerprint ?compress path f =
  let w = create ?chunk_bytes ?fingerprint ?compress path in
  Fun.protect ~finally:(fun () -> close w) (fun () -> f w)
