(** Streaming writer for the on-disk trace container (version 3).

    File layout (all integers LEB128 unless noted):

    {v
    "TQTRC3\n"                                      magic
    fingerprint  := program fingerprint (8 bytes LE, 0 = unknown)
    chunk*       := 0xA7  n_events  first_icount  payload_len
                    crc32 (4 bytes LE)  payload
    index        := n_chunks  (offset_delta first_icount_delta n_events)*
    trailer      := index_offset (8 bytes LE)  "TQTRIX1\n"
    v}

    Each chunk's payload is a run of {!Event.t} delta-encoded against a
    fresh {!Event.state} seeded with the chunk's [first_icount], so any chunk
    decodes without its predecessors; the index maps instruction counts to
    chunk offsets for O(log n) seeks.

    New in v3 (vs the v2 container, which {!Reader} still loads):

    - every chunk starts with the {!chunk_magic} byte and stores a CRC-32
      ({!Tq_util.Crc32}) of its header fields and payload, so corruption is
      detected deterministically instead of surfacing as a decode crash or
      silently wrong events;
    - chunks are fully self-delimiting, so a reader can rebuild the index by
      scanning forward from the file header when the trailer or index is
      missing or corrupt ({!Reader.load}[ ~mode:Salvage]);
    - the writer streams to ["path.tmp"] and atomically renames to [path] in
      {!close} — a finished trace is never observed half-written, and a
      recorder killed mid-run leaves a salvageable [.tmp] instead of a
      truncated file under the final name. *)

val magic : string
(** v3 container magic. *)

val magic_v2 : string
(** The previous container's magic; {!Reader} accepts both for one release. *)

val chunk_magic : char
(** First byte of every chunk (v3). *)

val trailer_magic : string

val header_bytes : int
(** Size of the fixed header (magic + fingerprint). *)

type t

val create : ?chunk_bytes:int -> ?fingerprint:int64 -> string -> t
(** Open ["path.tmp"] for writing and emit the header.  A chunk is flushed
    once its payload reaches [chunk_bytes] (default 64 KiB).  [fingerprint]
    is the recorded program's {!Tq_vm.Program.fingerprint} (default [0L] =
    unknown); replay refuses a trace whose fingerprint does not match the
    program it is replayed against.  If anything after opening the channel
    raises, the channel is closed and the temp file removed (no leaked fd). *)

val emit : t -> Event.t -> unit

val events : t -> int
(** Events emitted so far. *)

val close : t -> unit
(** Flush the last chunk, append the index and trailer, close the file and
    rename ["path.tmp"] to [path].  Idempotent — including when the
    finalization itself fails: the writer is marked closed before any
    syscall, and on error the channel is torn down with [close_out_noerr]
    and the [.tmp] file is left on disk for salvage. *)

val with_file : ?chunk_bytes:int -> ?fingerprint:int64 -> string -> (t -> 'a) -> 'a
(** [create] / [close] bracket; the file is closed (index written, temp file
    renamed) even if the callback raises. *)
