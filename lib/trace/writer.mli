(** Streaming writer for the on-disk trace container (versions 3 and 4).

    The complete wire-format specification — all three live container
    versions, chunk framing, the event codec, CRC coverage, index, trailer
    and salvage rules — is [docs/TRACE.md]; this comment is the summary.

    File layout (all integers LEB128 unless noted):

    {v
    "TQTRC3\n" | "TQTRC4\n"                         magic
    fingerprint  := program fingerprint (8 bytes LE, 0 = unknown)
    chunk*       := plain | body_def | repeat (the latter two v4 only)
    plain        := 0xA7  n_events  first_icount  payload_len
                    crc32 (4 bytes LE)  payload
    body_def     := 0xA9  0  first_icount  payload_len
                    crc32 (4 bytes LE)  body_events body
    repeat       := 0xA8  n_raw  first_icount  payload_len
                    crc32 (4 bytes LE)  body_events iters bref bcrc
                    field_bitmap field_tables
    index        := n_chunks  (offset_delta first_icount_delta n_events)*
    trailer      := index_offset (8 bytes LE)  "TQTRIX1\n"
    v}

    Each chunk's payload is a run of {!Event.t} delta-encoded against a
    fresh {!Event.state} seeded with the chunk's [first_icount], so any chunk
    decodes without its predecessors; the index maps instruction counts to
    chunk offsets for O(log n) seeks.  Index entries always count {e raw}
    (decoded) events, so seeks and shard bounds are version-agnostic.

    v3 (vs the v2 container, which {!Reader} still loads):

    - every chunk starts with a kind byte and stores a CRC-32
      ({!Tq_util.Crc32}) of its header fields and payload, so corruption is
      detected deterministically instead of surfacing as a decode crash or
      silently wrong events;
    - chunks are fully self-delimiting, so a reader can rebuild the index by
      scanning forward from the file header when the trailer or index is
      missing or corrupt ({!Reader.load}[ ~mode:Salvage]);
    - the writer streams to ["path.tmp"] and atomically renames to [path] in
      {!close} — a finished trace is never observed half-written, and a
      recorder killed mid-run leaves a salvageable [.tmp] instead of a
      truncated file under the final name.

    v4 ([~compress:true]) adds redundancy suppression ({!Squash}): a
    repeated loop-body event run is stored as one {e body-def chunk} (kind
    {!body_magic} — the body's events, encoded relative to their own first
    instruction count so the same body recurring later produces the same
    bytes and is interned once) plus a {e repeat chunk} (kind
    {!repeat_magic}) carrying the iteration count, a reference to the def
    (its file offset and payload CRC — a reference can never silently
    resolve to the wrong body) and per-numeric-field stride/literal tables;
    {!Reader} expands them transparently.  A def always precedes every
    repeat chunk that references it.  v4 chunk CRCs additionally cover the
    kind byte, so a flipped kind cannot masquerade as a valid chunk of the
    other kind. *)

val magic : string
(** v3 container magic. *)

val magic_v2 : string
(** The v2 container's magic; {!Reader} still accepts it. *)

val magic_v4 : string
(** v4 (redundancy-suppressed) container magic. *)

val chunk_magic : char
(** Kind byte of a plain event chunk (v3 and v4). *)

val repeat_magic : char
(** Kind byte of a repeat (suppressed loop) chunk — v4 only. *)

val body_magic : char
(** Kind byte of a body-def chunk (an interned loop body that repeat chunks
    reference) — v4 only. *)

val trailer_magic : string

val header_bytes : int
(** Size of the fixed header (magic + fingerprint); identical in v2/v3/v4. *)

type t

val create :
  ?chunk_bytes:int -> ?fingerprint:int64 -> ?compress:bool -> string -> t
(** Open ["path.tmp"] for writing and emit the header.  A chunk is flushed
    once its payload reaches [chunk_bytes] (default 64 KiB).  [fingerprint]
    is the recorded program's {!Tq_vm.Program.fingerprint} (default [0L] =
    unknown); replay refuses a trace whose fingerprint does not match the
    program it is replayed against.  [compress] (default [false]) writes a
    v4 container and routes events through the {!Squash} redundancy
    suppressor; the decoded event stream is identical either way.  If
    anything after opening the channel raises, the channel is closed and the
    temp file removed (no leaked fd). *)

val emit : t -> Event.t -> unit
(** Append one event.  Under [~compress], [Block_exec] events act as
    detection boundaries keyed by their address; use {!emit_boundary} when
    the engine's compiled-trace identity is available (the probe does). *)

val emit_boundary : t -> trace_id:int -> Event.t -> unit
(** [emit] for a block-dispatch event carrying the engine's compiled-trace
    id ({!Tq_dbi.Engine.add_trace_instrumenter}), the preferred dictionary
    key for repetition detection.  Equivalent to {!emit} for uncompressed
    writers. *)

val events : t -> int
(** Events emitted so far (raw count — what a reader will decode). *)

val stored_events : t -> int
(** Events physically encoded so far: plain events plus one body per
    body-def chunk (a body referenced by many repeat chunks is counted
    once).  [events w / stored_events w] is the event-level compression
    ratio (1x for uncompressed writers).  Only final after {!close} — the
    suppressor buffers a bounded window. *)

val repeat_chunks : t -> int
(** Repeat chunks written so far ([0] for uncompressed writers). *)

val body_chunks : t -> int
(** Body-def chunks written so far ([0] for uncompressed writers).  At most
    [repeat_chunks w] — fewer when interning shares a body across repeats. *)

val version : t -> int
(** Container version being written: [4] under [~compress], else [3]. *)

val close : t -> unit
(** Flush the suppressor and the last chunk, append the index and trailer,
    close the file and rename ["path.tmp"] to [path].  Idempotent —
    including when the finalization itself fails: the writer is marked
    closed before any syscall, and on error the channel is torn down with
    [close_out_noerr] and the [.tmp] file is left on disk for salvage. *)

val with_file :
  ?chunk_bytes:int ->
  ?fingerprint:int64 ->
  ?compress:bool ->
  string ->
  (t -> 'a) ->
  'a
(** [create] / [close] bracket; the file is closed (index written, temp file
    renamed) even if the callback raises. *)
