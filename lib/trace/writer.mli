(** Streaming writer for the on-disk trace container.

    File layout (all integers LEB128 unless noted):

    {v
    "TQTRC2\n"                                      magic
    fingerprint  := program fingerprint (8 bytes LE, 0 = unknown)
    chunk*       := n_events  first_icount  payload_len  payload
    index        := n_chunks  (offset_delta first_icount_delta n_events)*
    trailer      := index_offset (8 bytes LE)  "TQTRIX1\n"
    v}

    Each chunk's payload is a run of {!Event.t} delta-encoded against a
    fresh {!Event.state} seeded with the chunk's [first_icount], so any chunk
    decodes without its predecessors; the index maps instruction counts to
    chunk offsets for O(log n) seeks. *)

val magic : string
val trailer_magic : string

val header_bytes : int
(** Size of the fixed header (magic + fingerprint). *)

type t

val create : ?chunk_bytes:int -> ?fingerprint:int64 -> string -> t
(** Open [path] for writing and emit the header.  A chunk is flushed once its
    payload reaches [chunk_bytes] (default 64 KiB).  [fingerprint] is the
    recorded program's {!Tq_vm.Program.fingerprint} (default [0L] =
    unknown); replay refuses a trace whose fingerprint does not match the
    program it is replayed against. *)

val emit : t -> Event.t -> unit

val events : t -> int
(** Events emitted so far. *)

val close : t -> unit
(** Flush the last chunk, append the index and trailer, close the file. *)

val with_file : ?chunk_bytes:int -> ?fingerprint:int64 -> string -> (t -> 'a) -> 'a
(** [create] / [close] bracket; the file is closed (index written) even if
    the callback raises. *)
