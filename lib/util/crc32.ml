(* Table-driven CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320). *)

let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let digest ?(crc = 0) ?(pos = 0) ?len s =
  let len = match len with Some l -> l | None -> String.length s - pos in
  if pos < 0 || len < 0 || pos > String.length s - len then
    invalid_arg "Crc32.digest: slice out of bounds";
  let t = Lazy.force table in
  let c = ref (crc lxor 0xFFFFFFFF) in
  for i = pos to pos + len - 1 do
    c :=
      Array.unsafe_get t ((!c lxor Char.code (String.unsafe_get s i)) land 0xFF)
      lxor (!c lsr 8)
  done;
  !c lxor 0xFFFFFFFF land 0xFFFFFFFF
