(* Table-driven CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320),
   slicing-by-8: eight derived tables let the hot loop fold eight input
   bytes per iteration with eight independent table lookups instead of a
   serial byte-at-a-time chain.  Digests are bit-identical to the classic
   single-table algorithm (the derived tables are just the byte-at-a-time
   recurrence pre-composed), so existing containers verify unchanged. *)

let tables =
  lazy
    (let t0 =
       Array.init 256 (fun n ->
           let c = ref n in
           for _ = 0 to 7 do
             c :=
               if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
           done;
           !c)
     in
     let ts = Array.make 8 t0 in
     for k = 1 to 7 do
       let prev = ts.(k - 1) in
       ts.(k) <-
         Array.init 256 (fun n ->
             let p = prev.(n) in
             t0.(p land 0xFF) lxor (p lsr 8))
     done;
     ts)

(* Unaligned 16-bit little-endian load: the sliced hot loop wants 8 input
   bytes per iteration, and four 2-byte loads beat eight 1-byte loads.  The
   caller has bounds-checked the whole slice up front. *)
external get16u : string -> int -> int = "%caml_string_get16u"

let digest ?(crc = 0) ?(pos = 0) ?len s =
  let len = match len with Some l -> l | None -> String.length s - pos in
  if pos < 0 || len < 0 || pos > String.length s - len then
    invalid_arg "Crc32.digest: slice out of bounds";
  let ts = Lazy.force tables in
  let t0 = Array.unsafe_get ts 0
  and t1 = Array.unsafe_get ts 1
  and t2 = Array.unsafe_get ts 2
  and t3 = Array.unsafe_get ts 3
  and t4 = Array.unsafe_get ts 4
  and t5 = Array.unsafe_get ts 5
  and t6 = Array.unsafe_get ts 6
  and t7 = Array.unsafe_get ts 7 in
  let c = ref (crc lxor 0xFFFFFFFF) in
  let b i = Char.code (String.unsafe_get s i) in
  let i = ref pos in
  let stop8 = pos + len - 7 in
  while !i < stop8 do
    let j = !i in
    let lo = !c lxor (get16u s j lor (get16u s (j + 2) lsl 16)) in
    let hi = get16u s (j + 4) lor (get16u s (j + 6) lsl 16) in
    c :=
      Array.unsafe_get t7 (lo land 0xFF)
      lxor Array.unsafe_get t6 ((lo lsr 8) land 0xFF)
      lxor Array.unsafe_get t5 ((lo lsr 16) land 0xFF)
      lxor Array.unsafe_get t4 ((lo lsr 24) land 0xFF)
      lxor Array.unsafe_get t3 (hi land 0xFF)
      lxor Array.unsafe_get t2 ((hi lsr 8) land 0xFF)
      lxor Array.unsafe_get t1 ((hi lsr 16) land 0xFF)
      lxor Array.unsafe_get t0 ((hi lsr 24) land 0xFF);
    i := j + 8
  done;
  let stop = pos + len in
  while !i < stop do
    c := Array.unsafe_get t0 ((!c lxor b !i) land 0xFF) lxor (!c lsr 8);
    incr i
  done;
  !c lxor 0xFFFFFFFF land 0xFFFFFFFF
