(** CRC-32 (IEEE 802.3, polynomial 0xEDB88320) — the checksum guarding the
    trace container's chunks.

    The digest is kept in an [int] in [0, 0xFFFFFFFF]; on a 64-bit OCaml this
    is exact.  Digests compose: feeding two slices through a running [crc]
    equals digesting their concatenation, so a chunk's header and payload can
    be checksummed without copying them into one buffer. *)

val digest : ?crc:int -> ?pos:int -> ?len:int -> string -> int
(** [digest ?crc ?pos ?len s] extends [crc] (default [0], the digest of the
    empty string) with [len] bytes of [s] starting at [pos] (default: all of
    [s]).  [digest ~crc:(digest a) b = digest (a ^ b)].
    @raise Invalid_argument if [pos]/[len] do not describe a valid slice. *)
