exception Truncated of int

let write_u buf v =
  if v < 0 then invalid_arg "Leb128.write_u: negative";
  let v = ref v in
  let continue = ref true in
  while !continue do
    let byte = !v land 0x7f in
    v := !v lsr 7;
    if !v = 0 then begin
      continue := false;
      Buffer.add_uint8 buf byte
    end
    else Buffer.add_uint8 buf (byte lor 0x80)
  done

let write_s buf v =
  let v = ref v in
  let continue = ref true in
  while !continue do
    let byte = !v land 0x7f in
    v := !v asr 7;
    if (!v = 0 && byte land 0x40 = 0) || (!v = -1 && byte land 0x40 <> 0) then begin
      continue := false;
      Buffer.add_uint8 buf byte
    end
    else Buffer.add_uint8 buf (byte lor 0x80)
  done

let read_byte s pos =
  if !pos >= String.length s then raise (Truncated !pos);
  let v = Char.code s.[!pos] in
  incr pos;
  v

(* Decoding is the replay hot path (millions of calls per trace): both
   readers take a single-byte fast path — the common case for delta-encoded
   fields — and fall back to an accumulator loop for longer encodings. *)

let rec read_u_slow s pos acc shift =
  let b = read_byte s pos in
  let acc = acc lor ((b land 0x7f) lsl shift) in
  if b land 0x80 <> 0 then read_u_slow s pos acc (shift + 7) else acc

let read_u s pos =
  let p = !pos in
  if p >= String.length s then raise (Truncated p);
  let b = Char.code (String.unsafe_get s p) in
  if b < 0x80 then begin
    pos := p + 1;
    b
  end
  else read_u_slow s pos 0 0

let rec read_s_slow s pos acc shift =
  let b = read_byte s pos in
  let acc = acc lor ((b land 0x7f) lsl shift) in
  if b land 0x80 <> 0 then read_s_slow s pos acc (shift + 7)
  else if shift + 7 < Sys.int_size && b land 0x40 <> 0 then
    acc lor (-1 lsl (shift + 7))
  else acc

let read_s s pos =
  let p = !pos in
  if p >= String.length s then raise (Truncated p);
  let b = Char.code (String.unsafe_get s p) in
  if b < 0x80 then begin
    pos := p + 1;
    if b land 0x40 <> 0 then b lor (-1 lsl 7) else b
  end
  else read_s_slow s pos 0 0
