(** LEB128 variable-length integer codec.

    The byte-level convention shared by the on-disk object format
    ({!Tq_vm.Objfile}) and the event-trace format ({!Tq_trace}): 7 value bits
    per byte, little-endian groups, high bit = continuation.  [write_u]/
    [read_u] are the unsigned (ULEB128) variant for counts and sizes;
    [write_s]/[read_s] the signed (SLEB128) variant for addresses and
    deltas. *)

exception Truncated of int
(** Raised by the readers with the offending position when the string ends
    mid-integer. *)

val write_u : Buffer.t -> int -> unit
(** ULEB128.  @raise Invalid_argument on negative input. *)

val write_s : Buffer.t -> int -> unit
(** SLEB128, full OCaml [int] range. *)

val read_u : string -> int ref -> int
(** Decode at [!pos], advancing [pos]. @raise Truncated on short input. *)

val read_s : string -> int ref -> int
