(* Pages of 2^15 bits stored as 1024 words of 32 bits (OCaml ints are 63-bit,
   so 64-bit words would overflow on [1 lsl 63]). *)

let page_bits = 15
let page_size = 1 lsl page_bits (* bits per page *)
let words_per_page = page_size / 32

type t = {
  pages : (int, int array) Hashtbl.t;
  mutable count : int;
  (* last page touched: adds are strongly page-local, so this skips the
     hash lookup almost always *)
  mutable last_idx : int;
  mutable last_page : int array;
}

let create () =
  { pages = Hashtbl.create 64; count = 0; last_idx = min_int; last_page = [||] }

let page_of t idx =
  if idx = t.last_idx then t.last_page
  else begin
    let p =
      match Hashtbl.find_opt t.pages idx with
      | Some p -> p
      | None ->
          let p = Array.make words_per_page 0 in
          Hashtbl.add t.pages idx p;
          p
    in
    t.last_idx <- idx;
    t.last_page <- p;
    p
  end

let add t x =
  if x < 0 then invalid_arg "Paged_bitset.add: negative";
  let page = page_of t (x lsr page_bits) in
  let off = x land (page_size - 1) in
  let w = off lsr 5 and b = off land 31 in
  let old = page.(w) in
  let nw = old lor (1 lsl b) in
  if nw <> old then begin
    page.(w) <- nw;
    t.count <- t.count + 1
  end

(* branch-free 32-bit popcount (words hold 32 bits, see header comment) *)
let popcount32 x =
  let x = x - ((x lsr 1) land 0x55555555) in
  let x = (x land 0x33333333) + ((x lsr 2) land 0x33333333) in
  let x = (x + (x lsr 4)) land 0x0f0f0f0f in
  (* OCaml ints are wider than 32 bits, so the multiply doesn't truncate;
     keep only the byte that holds the folded sum. *)
  ((x * 0x01010101) lsr 24) land 0xff

(* Word-filled: one page lookup per page and one [lor] per 32-bit word
   instead of one of each per bit.  Ranges that fit inside one 32-bit word —
   nearly every memory access — take the masked single-write path up front
   (fitting in a word implies fitting in the page). *)
let add_range t x n =
  if n > 0 then begin
    if x < 0 then invalid_arg "Paged_bitset.add_range: negative";
    let b = x land 31 in
    if b + n <= 32 then begin
      let page = page_of t (x lsr page_bits) in
      let w = (x land (page_size - 1)) lsr 5 in
      let mask = ((1 lsl n) - 1) lsl b in
      let old = page.(w) in
      let nw = old lor mask in
      if nw <> old then begin
        t.count <- t.count + popcount32 (nw lxor old);
        page.(w) <- nw
      end
    end
    else begin
    let stop = x + n in
    let i = ref x in
    while !i < stop do
      let page_idx = !i lsr page_bits in
      let page = page_of t page_idx in
      let page_end = min stop ((page_idx + 1) lsl page_bits) in
      while !i < page_end do
        let off = !i land (page_size - 1) in
        let w = off lsr 5 and b = off land 31 in
        let span = min (32 - b) (page_end - !i) in
        let mask = ((1 lsl span) - 1) lsl b in
        let old = page.(w) in
        let nw = old lor mask in
        if nw <> old then begin
          t.count <- t.count + popcount32 (nw lxor old);
          page.(w) <- nw
        end;
        i := !i + span
      done
    done
    end
  end

let mem t x =
  if x < 0 then false
  else
    match Hashtbl.find_opt t.pages (x lsr page_bits) with
    | None -> false
    | Some page ->
        let off = x land (page_size - 1) in
        page.(off lsr 5) land (1 lsl (off land 31)) <> 0

let cardinal t = t.count

let iter f t =
  let idxs = Hashtbl.fold (fun k _ acc -> k :: acc) t.pages [] in
  let idxs = List.sort compare idxs in
  List.iter
    (fun idx ->
      let page = Hashtbl.find t.pages idx in
      let base = idx lsl page_bits in
      for w = 0 to words_per_page - 1 do
        let word = page.(w) in
        if word <> 0 then
          for b = 0 to 31 do
            if word land (1 lsl b) <> 0 then f (base + (w * 32) + b)
          done
      done)
    idxs

let union dst src =
  Hashtbl.iter
    (fun idx src_page ->
      let dst_page = page_of dst idx in
      for w = 0 to words_per_page - 1 do
        let sw = Array.unsafe_get src_page w in
        if sw <> 0 then begin
          let old = Array.unsafe_get dst_page w in
          let nw = old lor sw in
          if nw <> old then begin
            dst.count <- dst.count + popcount32 (nw lxor old);
            Array.unsafe_set dst_page w nw
          end
        end
      done)
    src.pages

let page_count t = Hashtbl.length t.pages

let clear t =
  Hashtbl.reset t.pages;
  t.count <- 0;
  t.last_idx <- min_int;
  t.last_page <- [||]
