(** Sparse bitsets over non-negative integers.

    Backed by 4 KiB pages allocated on demand, so membership sets over a
    64-bit-style address space (e.g. per-function touched-address sets for
    UnMA accounting) stay proportional to the number of distinct pages
    touched, not to the address range. *)

type t

val create : unit -> t

val add : t -> int -> unit
(** [add t x] inserts [x].  @raise Invalid_argument if [x < 0]. *)

val add_range : t -> int -> int -> unit
(** [add_range t x n] inserts [x], [x+1], ..., [x+n-1]. *)

val mem : t -> int -> bool

val cardinal : t -> int
(** Number of distinct members; O(1) (maintained incrementally). *)

val iter : (int -> unit) -> t -> unit
(** Iterate members in ascending order. *)

val union : t -> t -> unit
(** [union dst src] adds every member of [src] to [dst] ([src] unchanged).
    Word-at-a-time with an incremental cardinality update — the merge
    primitive for sharded tool states. *)

val page_count : t -> int
(** Number of allocated pages (for memory accounting / tests). *)

val clear : t -> unit
