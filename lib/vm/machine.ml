open Tq_isa

exception Trap of { ip : int; reason : string }

type t = {
  prog : Program.t;
  regs : int array;
  fregs : float array;
  memory : Memory.t;
  filesystem : Vfs.t;
  mutable pc : int;
  mutable count : int;
  mutable is_halted : bool;
  mutable exit_status : int option;
  mutable brk : int;
  fds : Vfs.fd option array;
  console : Buffer.t;
}

let trap t reason = raise (Trap { ip = t.pc; reason })

let create ?vfs prog =
  let t =
    {
      prog;
      regs = Array.make Isa.num_regs 0;
      fregs = Array.make Isa.num_regs 0.;
      memory = Memory.create ();
      filesystem = (match vfs with Some v -> v | None -> Vfs.create ());
      pc = prog.Program.entry;
      count = 0;
      is_halted = false;
      exit_status = None;
      brk = prog.Program.data_end;
      fds = Array.make 64 None;
      console = Buffer.create 256;
    }
  in
  t.regs.(Isa.reg_sp) <- Layout.stack_top;
  List.iter
    (fun (addr, bytes) -> Memory.write_bytes t.memory addr (Bytes.of_string bytes))
    prog.Program.data;
  t

let program t = t.prog
let vfs t = t.filesystem
let ip t = t.pc
let reg t r = if r = Isa.reg_zero then 0 else t.regs.(r)

let set_reg t r v = if r <> Isa.reg_zero then t.regs.(r) <- v

let freg t r = t.fregs.(r)
let set_freg t r v = t.fregs.(r) <- v
let sp t = t.regs.(Isa.reg_sp)
let instr_count t = t.count
let halted t = t.is_halted
let exit_code t = t.exit_status
let mem t = t.memory
let stdout_contents t = Buffer.contents t.console

let read_ea t ins =
  match ins with
  | Isa.Load { base; off; _ } | Isa.Loads { base; off; _ }
  | Isa.Fload { base; off; _ } | Isa.Prefetch { base; off } ->
      reg t base + off
  | Isa.Ret -> sp t
  | Isa.Movs { src; _ } -> reg t src
  | _ -> 0

let write_ea t ins =
  match ins with
  | Isa.Store { base; off; _ } | Isa.Fstore { base; off; _ } -> reg t base + off
  | Isa.Call _ | Isa.Callr _ -> sp t - 8
  | Isa.Movs { dst; _ } -> reg t dst
  | _ -> 0

(* Dynamic byte count of a block-move; 0 for other instructions. *)
let block_len t ins =
  match ins with Isa.Movs { len; _ } -> max 0 (reg t len) | _ -> 0

let predicate_true t ins =
  match Isa.predicate_of ins with None -> true | Some p -> reg t p <> 0

let fetch t =
  match Program.fetch t.prog t.pc with
  | ins -> ins
  | exception Invalid_argument msg -> trap t msg

(* Unsigned comparison over the full native-int range. *)
let ucmp_lt a b = a lxor min_int < b lxor min_int

let eval_binop t op a b =
  match op with
  | Isa.Add -> a + b
  | Sub -> a - b
  | Mul -> a * b
  | Div -> if b = 0 then trap t "integer division by zero" else a / b
  | Rem -> if b = 0 then trap t "integer remainder by zero" else a mod b
  | And -> a land b
  | Or -> a lor b
  | Xor -> a lxor b
  | Sll -> a lsl (b land 63)
  | Srl -> a lsr (b land 63)
  | Sra -> a asr (b land 63)
  | Slt -> if a < b then 1 else 0
  | Sltu -> if ucmp_lt a b then 1 else 0
  | Seq -> if a = b then 1 else 0
  | Sne -> if a <> b then 1 else 0
  | Sle -> if a <= b then 1 else 0
  | Sge -> if a >= b then 1 else 0
  | Sgt -> if a > b then 1 else 0

let eval_fbinop op a b =
  match op with
  | Isa.Fadd -> a +. b
  | Fsub -> a -. b
  | Fmul -> a *. b
  | Fdiv -> a /. b

let eval_funop op a =
  match op with
  | Isa.Fneg -> -.a
  | Fabs -> Float.abs a
  | Fsqrt -> Float.sqrt a
  | Fsin -> sin a
  | Fcos -> cos a
  | Ffloor -> Float.floor a

let eval_fcmp c a b =
  match c with
  | Isa.Feq -> a = b
  | Fne -> a <> b
  | Flt -> a < b
  | Fle -> a <= b

(* ---------- syscalls ---------- *)

let sys_exit = Sysno.exit
let sys_open = Sysno.open_
let sys_close = Sysno.close
let sys_read = Sysno.read
let sys_write = Sysno.write
let sys_brk = Sysno.brk
let sys_putint = Sysno.putint
let sys_putfloat = Sysno.putfloat
let sys_putstr = Sysno.putstr
let sys_putchar = Sysno.putchar
let sys_seek = Sysno.seek
let sys_fsize = Sysno.fsize
let sys_clock = Sysno.clock

let alloc_fd t =
  let rec go i =
    if i >= Array.length t.fds then trap t "out of file descriptors"
    else if t.fds.(i) = None then i
    else go (i + 1)
  in
  go 3

let get_fd t n =
  if n < 0 || n >= Array.length t.fds then trap t "bad file descriptor"
  else
    match t.fds.(n) with
    | None -> trap t (Printf.sprintf "file descriptor %d not open" n)
    | Some fd -> fd

let do_syscall t n =
  let a0 = reg t Isa.reg_a0
  and a1 = reg t (Isa.reg_a0 + 1)
  and a2 = reg t (Isa.reg_a0 + 2) in
  let ret v = set_reg t Isa.reg_rv v in
  if n = sys_exit then begin
    t.is_halted <- true;
    t.exit_status <- Some a0
  end
  else if n = sys_open then begin
    let path = Memory.read_cstring t.memory a0 in
    match Vfs.openf t.filesystem path ~writable:(a1 <> 0) with
    | Error _ -> ret (-1)
    | Ok fd ->
        let n = alloc_fd t in
        t.fds.(n) <- Some fd;
        ret n
  end
  else if n = sys_close then begin
    (match t.fds.(a0) with
    | Some fd -> Vfs.close t.filesystem fd
    | None -> ());
    if a0 >= 0 && a0 < Array.length t.fds then t.fds.(a0) <- None;
    ret 0
  end
  else if n = sys_read then begin
    let fd = get_fd t a0 in
    let buf = Bytes.create (max 0 a2) in
    let n = Vfs.read fd buf (max 0 a2) in
    Memory.write_bytes t.memory a1 (Bytes.sub buf 0 n);
    ret n
  end
  else if n = sys_write then begin
    let fd = get_fd t a0 in
    let buf = Memory.read_bytes t.memory a1 (max 0 a2) in
    ret (Vfs.write fd buf (max 0 a2))
  end
  else if n = sys_brk then begin
    if a0 > t.brk then t.brk <- a0;
    ret t.brk
  end
  else if n = sys_putint then begin
    Buffer.add_string t.console (string_of_int a0);
    ret 0
  end
  else if n = sys_putfloat then begin
    (* Float syscall argument travels in f4 (see {!Sysno}). *)
    Buffer.add_string t.console (Printf.sprintf "%.6g" (freg t 4));
    ret 0
  end
  else if n = sys_putstr then begin
    Buffer.add_bytes t.console (Memory.read_bytes t.memory a0 a1);
    ret 0
  end
  else if n = sys_putchar then begin
    Buffer.add_char t.console (Char.chr (a0 land 0xff));
    ret 0
  end
  else if n = sys_seek then begin
    Vfs.seek (get_fd t a0) a1;
    ret 0
  end
  else if n = sys_fsize then ret (Vfs.fd_size (get_fd t a0))
  else if n = sys_clock then ret t.count
  else trap t (Printf.sprintf "unknown syscall %d" n)

(* ---------- execution ---------- *)

let exec t ins =
  let next = t.pc + Isa.ins_bytes in
  t.count <- t.count + 1;
  (match ins with
  | Isa.Nop -> t.pc <- next
  | Li (r, i) ->
      set_reg t r i;
      t.pc <- next
  | Mov (d, s) ->
      set_reg t d (reg t s);
      t.pc <- next
  | Bin (op, d, s, o) ->
      let b = match o with Isa.Reg r -> reg t r | Imm i -> i in
      set_reg t d (eval_binop t op (reg t s) b);
      t.pc <- next
  | Fli (r, f) ->
      t.fregs.(r) <- f;
      t.pc <- next
  | Fmov (d, s) ->
      t.fregs.(d) <- t.fregs.(s);
      t.pc <- next
  | Fbin (op, d, a, b) ->
      t.fregs.(d) <- eval_fbinop op t.fregs.(a) t.fregs.(b);
      t.pc <- next
  | Fun (op, d, s) ->
      t.fregs.(d) <- eval_funop op t.fregs.(s);
      t.pc <- next
  | Fcmp (c, d, a, b) ->
      set_reg t d (if eval_fcmp c t.fregs.(a) t.fregs.(b) then 1 else 0);
      t.pc <- next
  | I2f (d, s) ->
      t.fregs.(d) <- float_of_int (reg t s);
      t.pc <- next
  | F2i (d, s) ->
      set_reg t d (int_of_float t.fregs.(s));
      t.pc <- next
  | Load { width; dst; base; off; pred } ->
      (match pred with
      | Some p when reg t p = 0 -> ()
      | _ -> set_reg t dst (Memory.load t.memory ~width (reg t base + off)));
      t.pc <- next
  | Loads { width; dst; base; off } ->
      set_reg t dst (Memory.loads t.memory ~width (reg t base + off));
      t.pc <- next
  | Store { width; src; base; off; pred } ->
      (match pred with
      | Some p when reg t p = 0 -> ()
      | _ -> Memory.store t.memory ~width (reg t base + off) (reg t src));
      t.pc <- next
  | Fload { dst; base; off; pred } ->
      (match pred with
      | Some p when reg t p = 0 -> ()
      | _ -> t.fregs.(dst) <- Memory.load_f64 t.memory (reg t base + off));
      t.pc <- next
  | Fstore { src; base; off; pred } ->
      (match pred with
      | Some p when reg t p = 0 -> ()
      | _ -> Memory.store_f64 t.memory (reg t base + off) t.fregs.(src));
      t.pc <- next
  | Prefetch _ ->
      (* Hint only: references memory from the profiler's point of view but
         has no architectural effect. *)
      t.pc <- next
  | Movs { dst; src; len } ->
      let n = reg t len in
      if n > 0 then begin
        let data = Memory.read_bytes t.memory (reg t src) n in
        Memory.write_bytes t.memory (reg t dst) data
      end;
      t.pc <- next
  | Jmp a -> t.pc <- a
  | Jr r -> t.pc <- reg t r
  | Bz (r, a) -> t.pc <- (if reg t r = 0 then a else next)
  | Bnz (r, a) -> t.pc <- (if reg t r <> 0 then a else next)
  | Call a ->
      let nsp = sp t - 8 in
      Memory.store t.memory ~width:Isa.W8 nsp next;
      t.regs.(Isa.reg_sp) <- nsp;
      t.pc <- a
  | Callr r ->
      let target = reg t r in
      let nsp = sp t - 8 in
      Memory.store t.memory ~width:Isa.W8 nsp next;
      t.regs.(Isa.reg_sp) <- nsp;
      t.pc <- target
  | Ret ->
      let ra = Memory.load t.memory ~width:Isa.W8 (sp t) in
      t.regs.(Isa.reg_sp) <- sp t + 8;
      t.pc <- ra
  | Syscall n ->
      do_syscall t n;
      t.pc <- next
  | Halt ->
      t.is_halted <- true;
      if t.exit_status = None then t.exit_status <- Some 0);
  ()

(* ---------- closure compilation (threaded code) ---------- *)

(* First-class binop implementations for the closure compiler: resolving the
   operator once at compile time replaces the per-execution [eval_binop]
   dispatch with one indirect call.  [trap] inside Div/Rem sees the correct
   ip because [compile_ins] closures only advance [pc] after their work,
   preserving exec's "pc points at the executing instruction" invariant. *)
let binop_fn t op : int -> int -> int =
  match op with
  | Isa.Add -> ( + )
  | Sub -> ( - )
  | Mul -> ( * )
  | Div -> fun a b -> if b = 0 then trap t "integer division by zero" else a / b
  | Rem ->
      fun a b -> if b = 0 then trap t "integer remainder by zero" else a mod b
  | And -> ( land )
  | Or -> ( lor )
  | Xor -> ( lxor )
  | Sll -> fun a b -> a lsl (b land 63)
  | Srl -> fun a b -> a lsr (b land 63)
  | Sra -> fun a b -> a asr (b land 63)
  | Slt -> fun a b -> if a < b then 1 else 0
  | Sltu -> fun a b -> if ucmp_lt a b then 1 else 0
  | Seq -> fun a b -> if a = b then 1 else 0
  | Sne -> fun a b -> if a <> b then 1 else 0
  | Sle -> fun a b -> if a <= b then 1 else 0
  | Sge -> fun a b -> if a >= b then 1 else 0
  | Sgt -> fun a b -> if a > b then 1 else 0

(* Specialize one instruction into a single fused closure.  The returned
   closure performs exactly what [exec] would — bump the retired counter,
   do the work, leave [pc] at the follow-on address — but with registers,
   immediates, widths and predicates resolved here, once, so the hot loop
   pays no variant dispatch.  Reads of the zero register go straight to
   [regs.(0)], which is 0 by construction (nothing ever writes it); writes
   to it are compiled out while still evaluating the right-hand side for
   its faults, mirroring [set_reg] after evaluation.  Keeping this compiler
   inside [Machine] is what keeps the architectural state sealed: callers
   get closures, never the raw arrays. *)
let compile_ins t ins ~next =
  let regs = t.regs and fregs = t.fregs and mem = t.memory in
  match ins with
  | Isa.Nop | Isa.Prefetch _ ->
      (* Prefetch is a hint: references memory from the profiler's point of
         view but has no architectural effect. *)
      fun () ->
        t.count <- t.count + 1;
        t.pc <- next
  | Isa.Li (r, i) ->
      if r = Isa.reg_zero then
        fun () ->
          t.count <- t.count + 1;
          t.pc <- next
      else
        fun () ->
          t.count <- t.count + 1;
          regs.(r) <- i;
          t.pc <- next
  | Isa.Mov (d, s) ->
      if d = Isa.reg_zero then
        fun () ->
          t.count <- t.count + 1;
          t.pc <- next
      else
        fun () ->
          t.count <- t.count + 1;
          regs.(d) <- regs.(s);
          t.pc <- next
  | Isa.Bin (op, d, s, o) -> (
      let f = binop_fn t op in
      match o with
      | Isa.Reg r ->
          if d = Isa.reg_zero then
            fun () ->
              t.count <- t.count + 1;
              ignore (f regs.(s) regs.(r));
              t.pc <- next
          else
            fun () ->
              t.count <- t.count + 1;
              regs.(d) <- f regs.(s) regs.(r);
              t.pc <- next
      | Isa.Imm i ->
          if d = Isa.reg_zero then
            fun () ->
              t.count <- t.count + 1;
              ignore (f regs.(s) i);
              t.pc <- next
          else
            fun () ->
              t.count <- t.count + 1;
              regs.(d) <- f regs.(s) i;
              t.pc <- next)
  | Isa.Fli (r, f) ->
      fun () ->
        t.count <- t.count + 1;
        fregs.(r) <- f;
        t.pc <- next
  | Isa.Fmov (d, s) ->
      fun () ->
        t.count <- t.count + 1;
        fregs.(d) <- fregs.(s);
        t.pc <- next
  | Isa.Fbin (op, d, a, b) -> (
      match op with
      | Isa.Fadd ->
          fun () ->
            t.count <- t.count + 1;
            fregs.(d) <- fregs.(a) +. fregs.(b);
            t.pc <- next
      | Fsub ->
          fun () ->
            t.count <- t.count + 1;
            fregs.(d) <- fregs.(a) -. fregs.(b);
            t.pc <- next
      | Fmul ->
          fun () ->
            t.count <- t.count + 1;
            fregs.(d) <- fregs.(a) *. fregs.(b);
            t.pc <- next
      | Fdiv ->
          fun () ->
            t.count <- t.count + 1;
            fregs.(d) <- fregs.(a) /. fregs.(b);
            t.pc <- next)
  | Isa.Fun (op, d, s) ->
      let f =
        match op with
        | Isa.Fneg -> ( ~-. )
        | Fabs -> Float.abs
        | Fsqrt -> Float.sqrt
        | Fsin -> sin
        | Fcos -> cos
        | Ffloor -> Float.floor
      in
      fun () ->
        t.count <- t.count + 1;
        fregs.(d) <- f fregs.(s);
        t.pc <- next
  | Isa.Fcmp (c, d, a, b) ->
      if d = Isa.reg_zero then
        fun () ->
          t.count <- t.count + 1;
          t.pc <- next
      else
        let f =
          match c with
          | Isa.Feq -> fun x y -> if x = y then 1 else 0
          | Fne -> fun x y -> if x <> y then 1 else 0
          | Flt -> fun x y -> if x < y then 1 else 0
          | Fle -> fun x y -> if x <= y then 1 else 0
        in
        fun () ->
          t.count <- t.count + 1;
          regs.(d) <- f fregs.(a) fregs.(b);
          t.pc <- next
  | Isa.I2f (d, s) ->
      fun () ->
        t.count <- t.count + 1;
        fregs.(d) <- float_of_int regs.(s);
        t.pc <- next
  | Isa.F2i (d, s) ->
      if d = Isa.reg_zero then
        fun () ->
          t.count <- t.count + 1;
          t.pc <- next
      else
        fun () ->
          t.count <- t.count + 1;
          regs.(d) <- int_of_float fregs.(s);
          t.pc <- next
  | Isa.Load { width; dst; base; off; pred } -> (
      let ld =
        match width with
        | Isa.W8 -> Memory.load_w8 mem
        | w -> fun a -> Memory.load mem ~width:w a
      in
      match pred with
      | None ->
          if dst = Isa.reg_zero then
            fun () ->
              t.count <- t.count + 1;
              ignore (ld (regs.(base) + off));
              t.pc <- next
          else
            fun () ->
              t.count <- t.count + 1;
              regs.(dst) <- ld (regs.(base) + off);
              t.pc <- next
      | Some p ->
          fun () ->
            t.count <- t.count + 1;
            (if regs.(p) <> 0 then
               let v = ld (regs.(base) + off) in
               if dst <> Isa.reg_zero then regs.(dst) <- v);
            t.pc <- next)
  | Isa.Loads { width; dst; base; off } ->
      if dst = Isa.reg_zero then
        fun () ->
          t.count <- t.count + 1;
          ignore (Memory.loads mem ~width (regs.(base) + off));
          t.pc <- next
      else
        fun () ->
          t.count <- t.count + 1;
          regs.(dst) <- Memory.loads mem ~width (regs.(base) + off);
          t.pc <- next
  | Isa.Store { width; src; base; off; pred } -> (
      let st =
        match width with
        | Isa.W8 -> Memory.store_w8 mem
        | w -> fun a v -> Memory.store mem ~width:w a v
      in
      match pred with
      | None ->
          fun () ->
            t.count <- t.count + 1;
            st (regs.(base) + off) regs.(src);
            t.pc <- next
      | Some p ->
          fun () ->
            t.count <- t.count + 1;
            if regs.(p) <> 0 then st (regs.(base) + off) regs.(src);
            t.pc <- next)
  | Isa.Fload { dst; base; off; pred } -> (
      match pred with
      | None ->
          fun () ->
            t.count <- t.count + 1;
            fregs.(dst) <- Memory.load_f64 mem (regs.(base) + off);
            t.pc <- next
      | Some p ->
          fun () ->
            t.count <- t.count + 1;
            if regs.(p) <> 0 then
              fregs.(dst) <- Memory.load_f64 mem (regs.(base) + off);
            t.pc <- next)
  | Isa.Fstore { src; base; off; pred } -> (
      match pred with
      | None ->
          fun () ->
            t.count <- t.count + 1;
            Memory.store_f64 mem (regs.(base) + off) fregs.(src);
            t.pc <- next
      | Some p ->
          fun () ->
            t.count <- t.count + 1;
            if regs.(p) <> 0 then
              Memory.store_f64 mem (regs.(base) + off) fregs.(src);
            t.pc <- next)
  | Isa.Movs { dst; src; len } ->
      fun () ->
        t.count <- t.count + 1;
        let n = regs.(len) in
        if n > 0 then begin
          let data = Memory.read_bytes mem regs.(src) n in
          Memory.write_bytes mem regs.(dst) data
        end;
        t.pc <- next
  | Isa.Jmp a ->
      fun () ->
        t.count <- t.count + 1;
        t.pc <- a
  | Isa.Jr r ->
      fun () ->
        t.count <- t.count + 1;
        t.pc <- regs.(r)
  | Isa.Bz (r, a) ->
      fun () ->
        t.count <- t.count + 1;
        t.pc <- (if regs.(r) = 0 then a else next)
  | Isa.Bnz (r, a) ->
      fun () ->
        t.count <- t.count + 1;
        t.pc <- (if regs.(r) <> 0 then a else next)
  | Isa.Call a ->
      fun () ->
        t.count <- t.count + 1;
        let nsp = regs.(Isa.reg_sp) - 8 in
        Memory.store_w8 mem nsp next;
        regs.(Isa.reg_sp) <- nsp;
        t.pc <- a
  | Isa.Callr r ->
      fun () ->
        t.count <- t.count + 1;
        (* target read before the push, exactly as [exec] orders it *)
        let target = regs.(r) in
        let nsp = regs.(Isa.reg_sp) - 8 in
        Memory.store_w8 mem nsp next;
        regs.(Isa.reg_sp) <- nsp;
        t.pc <- target
  | Isa.Ret ->
      fun () ->
        t.count <- t.count + 1;
        let sp = regs.(Isa.reg_sp) in
        let ra = Memory.load_w8 mem sp in
        regs.(Isa.reg_sp) <- sp + 8;
        t.pc <- ra
  | Isa.Syscall n ->
      fun () ->
        t.count <- t.count + 1;
        do_syscall t n;
        t.pc <- next
  | Isa.Halt ->
      fun () ->
        t.count <- t.count + 1;
        t.is_halted <- true;
        if t.exit_status = None then t.exit_status <- Some 0
