(** Architectural state and instruction semantics.

    A [Machine.t] is one simulated process: registers, sparse memory, program
    break, file descriptors and a retired-instruction counter.  The counter
    is the {e clock} every profiler in this repository uses, mirroring the
    paper's platform-independent instruction-count timing.

    [exec] executes a single already-fetched instruction; it is shared by the
    plain executor and by the DBI engine (which interleaves analysis-routine
    calls with [exec]).  Faults raise [Trap]. *)

exception Trap of { ip : int; reason : string }

type t

val create : ?vfs:Vfs.t -> Program.t -> t
(** Fresh process: [ip] at the program entry, [sp] at [Layout.stack_top],
    all registers zero, data segments copied in, brk at [data_end]. *)

val program : t -> Program.t
val vfs : t -> Vfs.t

(** {2 State accessors} *)

val ip : t -> int
val reg : t -> Tq_isa.Isa.reg -> int
val set_reg : t -> Tq_isa.Isa.reg -> int -> unit
val freg : t -> Tq_isa.Isa.freg -> float
val set_freg : t -> Tq_isa.Isa.freg -> float -> unit
val sp : t -> int
val instr_count : t -> int
val halted : t -> bool
val exit_code : t -> int option
val mem : t -> Memory.t
val stdout_contents : t -> string
(** Console output accumulated through the put* syscalls. *)

(** {2 Effective addresses}

    Computed from the current register state {e before} executing the
    instruction — this is what the DBI engine passes to analysis routines as
    the Pin [IARG_MEMORY*_EA] analogues. *)

val read_ea : t -> Tq_isa.Isa.ins -> int
(** Effective address of the memory read; meaningless (0) if the instruction
    does not read memory. [Ret] reads at [sp]. *)

val write_ea : t -> Tq_isa.Isa.ins -> int
(** Effective address of the memory write; [Call] writes at [sp-8]. *)

val block_len : t -> Tq_isa.Isa.ins -> int
(** Dynamic byte count of a [Movs] block move (0 for anything else) — the
    value analysis routines must use in place of the static widths. *)

val predicate_true : t -> Tq_isa.Isa.ins -> bool
(** Whether a predicated access will actually execute (true for
    non-predicated instructions). *)

(** {2 Execution} *)

val fetch : t -> Tq_isa.Isa.ins
(** Instruction at the current [ip]. @raise Trap on a wild [ip]. *)

val exec : t -> Tq_isa.Isa.ins -> unit
(** Execute one instruction (must be the one at [ip]): updates registers,
    memory, [ip] and the retired-instruction counter.  Syscalls are handled
    inline; [exit] sets the halted flag. *)

val compile_ins : t -> Tq_isa.Isa.ins -> next:int -> (unit -> unit)
(** [compile_ins t ins ~next] specializes [ins] (the instruction at address
    [next - ins_bytes]) into a single fused closure that is observably
    identical to [exec t ins]: it bumps the retired-instruction counter, does
    the work, and leaves [ip] at the follow-on address ([next] for straight
    -line code, the transfer target for control flow).  Register numbers,
    immediates, widths and predicates are resolved at compile time, so
    executing the closure pays no instruction dispatch — the primitive the
    DBI engine's threaded-code traces are built from.  The closures mutate
    the machine's private state directly; the state stays sealed because
    only closures, never the underlying arrays, escape this module. *)
