let page_bits = 12
let page_size = 1 lsl page_bits
let page_mask = page_size - 1

(* Direct-mapped page-translation cache.  Compiled code has strong page
   locality (stack frames, sequential buffers) but alternates between a few
   working pages — stack, globals, heap buffer — which a one-entry cache
   thrashes on.  64 direct-mapped entries keep all of them resident and
   turn the common case into one array compare instead of a hash lookup.
   The hit counters feed the engine's self-profile (bench `engine`). *)
let tlb_bits = 6
let tlb_size = 1 lsl tlb_bits
let tlb_mask = tlb_size - 1

type t = {
  pages : (int, Bytes.t) Hashtbl.t;
  tags : int array; (* page index cached in each slot; -1 = empty *)
  slots : Bytes.t array;
  mutable hits : int;
  mutable misses : int;
}

type cache_stats = { hits : int; misses : int }

let no_page = Bytes.create 0

let create () =
  {
    pages = Hashtbl.create 256;
    tags = Array.make tlb_size (-1);
    slots = Array.make tlb_size no_page;
    hits = 0;
    misses = 0;
  }

let cache_stats (m : t) = { hits = m.hits; misses = m.misses }

(* Translation with allocate-on-miss (store side). *)
let page_of t idx =
  let s = idx land tlb_mask in
  if Array.unsafe_get t.tags s = idx then begin
    t.hits <- t.hits + 1;
    Array.unsafe_get t.slots s
  end
  else begin
    t.misses <- t.misses + 1;
    let p =
      match Hashtbl.find_opt t.pages idx with
      | Some p -> p
      | None ->
          let p = Bytes.make page_size '\000' in
          Hashtbl.add t.pages idx p;
          p
    in
    t.tags.(s) <- idx;
    t.slots.(s) <- p;
    p
  end

(* Translation without allocation (load side): an untouched page reads as
   zeroes and is not materialized. *)
let find_page t idx =
  let s = idx land tlb_mask in
  if Array.unsafe_get t.tags s = idx then begin
    t.hits <- t.hits + 1;
    Some (Array.unsafe_get t.slots s)
  end
  else begin
    t.misses <- t.misses + 1;
    match Hashtbl.find_opt t.pages idx with
    | Some p ->
        t.tags.(s) <- idx;
        t.slots.(s) <- p;
        Some p
    | None -> None
  end

let check addr =
  if addr < 0 then invalid_arg "Memory: negative address"

let get_u8 t addr =
  check addr;
  match find_page t (addr lsr page_bits) with
  | None -> 0
  | Some p -> Bytes.get_uint8 p (addr land page_mask)

let set_u8 t addr v =
  check addr;
  let p = page_of t (addr lsr page_bits) in
  Bytes.set_uint8 p (addr land page_mask) (v land 0xff)

(* Fast within-page paths; byte-wise fallback across pages. *)

let load t ~width addr =
  check addr;
  let off = addr land page_mask in
  let n = Tq_isa.Isa.width_bytes width in
  if off + n <= page_size then begin
    match find_page t (addr lsr page_bits) with
    | None -> 0
    | Some p -> (
        match width with
        | Tq_isa.Isa.W1 -> Bytes.get_uint8 p off
        | W2 -> Bytes.get_uint16_le p off
        | W4 -> Int32.to_int (Bytes.get_int32_le p off) land 0xffffffff
        | W8 ->
            (* Stored as 64 bits; OCaml ints are 63-bit so the top bit folds
               into the sign, which is the behaviour native code sees. *)
            Int64.to_int (Bytes.get_int64_le p off))
  end
  else begin
    let v = ref 0 in
    for i = n - 1 downto 0 do
      v := (!v lsl 8) lor get_u8 t (addr + i)
    done;
    !v
  end

let sign_extend v bits =
  let shift = Sys.int_size - bits in
  (v lsl shift) asr shift

let loads t ~width addr =
  let v = load t ~width addr in
  match width with
  | Tq_isa.Isa.W1 -> sign_extend v 8
  | W2 -> sign_extend v 16
  | W4 -> sign_extend v 32
  | W8 -> v

let store t ~width addr v =
  check addr;
  let off = addr land page_mask in
  let n = Tq_isa.Isa.width_bytes width in
  if off + n <= page_size then begin
    let p = page_of t (addr lsr page_bits) in
    match width with
    | Tq_isa.Isa.W1 -> Bytes.set_uint8 p off (v land 0xff)
    | W2 -> Bytes.set_uint16_le p off (v land 0xffff)
    | W4 -> Bytes.set_int32_le p off (Int32.of_int v)
    | W8 -> Bytes.set_int64_le p off (Int64.of_int v)
  end
  else
    for i = 0 to n - 1 do
      set_u8 t (addr + i) ((v lsr (8 * i)) land 0xff)
    done

(* Aligned 8-byte fast paths: 8-byte loads/stores dominate the wfs traffic
   (stack slots, doubles, return addresses) and an 8-aligned access can
   never straddle a page, so the width dispatch and the straddle test both
   disappear. *)

let load_w8 t addr =
  check addr;
  let off = addr land page_mask in
  if off land 7 = 0 then
    match find_page t (addr lsr page_bits) with
    | None -> 0
    | Some p -> Int64.to_int (Bytes.get_int64_le p off)
  else load t ~width:Tq_isa.Isa.W8 addr

let store_w8 t addr v =
  check addr;
  let off = addr land page_mask in
  if off land 7 = 0 then
    Bytes.set_int64_le (page_of t (addr lsr page_bits)) off (Int64.of_int v)
  else store t ~width:Tq_isa.Isa.W8 addr v

let load_f64 t addr =
  check addr;
  let off = addr land page_mask in
  if off + 8 <= page_size then
    match find_page t (addr lsr page_bits) with
    | None -> 0.
    | Some p -> Int64.float_of_bits (Bytes.get_int64_le p off)
  else begin
    let bits = ref 0L in
    for i = 7 downto 0 do
      bits := Int64.logor (Int64.shift_left !bits 8)
                (Int64.of_int (get_u8 t (addr + i)))
    done;
    Int64.float_of_bits !bits
  end

let store_f64 t addr v =
  check addr;
  let off = addr land page_mask in
  if off + 8 <= page_size then begin
    let p = page_of t (addr lsr page_bits) in
    Bytes.set_int64_le p off (Int64.bits_of_float v)
  end
  else begin
    let bits = Int64.bits_of_float v in
    for i = 0 to 7 do
      set_u8 t (addr + i)
        (Int64.to_int (Int64.shift_right_logical bits (8 * i)) land 0xff)
    done
  end

let read_bytes t addr len =
  let out = Bytes.make len '\000' in
  let i = ref 0 in
  while !i < len do
    let a = addr + !i in
    let off = a land page_mask in
    let chunk = min (len - !i) (page_size - off) in
    (match find_page t (a lsr page_bits) with
    | None -> ()
    | Some p -> Bytes.blit p off out !i chunk);
    i := !i + chunk
  done;
  out

let write_bytes t addr b =
  let len = Bytes.length b in
  let i = ref 0 in
  while !i < len do
    let a = addr + !i in
    let off = a land page_mask in
    let chunk = min (len - !i) (page_size - off) in
    let p = page_of t (a lsr page_bits) in
    Bytes.blit b !i p off chunk;
    i := !i + chunk
  done

let read_cstring t ?(max = 4096) addr =
  let buf = Buffer.create 32 in
  let rec go i =
    if i >= max then invalid_arg "Memory.read_cstring: unterminated"
    else begin
      let c = get_u8 t (addr + i) in
      if c = 0 then Buffer.contents buf
      else begin
        Buffer.add_char buf (Char.chr c);
        go (i + 1)
      end
    end
  in
  go 0

let page_count t = Hashtbl.length t.pages
