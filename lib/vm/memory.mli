(** Sparse byte-addressable memory.

    Backed by 4 KiB pages allocated on first touch, so a process can place
    its stack near the top of a 47-bit address space while globals sit at low
    addresses, without reserving the range in between.  All multi-byte
    accesses are little-endian and may straddle page boundaries. *)

type t

val create : unit -> t

val load : t -> width:Tq_isa.Isa.width -> int -> int
(** Zero-extended load. @raise Invalid_argument on negative address. *)

val loads : t -> width:Tq_isa.Isa.width -> int -> int
(** Sign-extended load. *)

val store : t -> width:Tq_isa.Isa.width -> int -> int -> unit
(** [store t ~width addr v] truncates [v] to [width] bytes. *)

val load_w8 : t -> int -> int
(** 8-byte zero-extended load with an aligned fast path: an 8-aligned
    access can never straddle a page, so the width dispatch and straddle
    test are skipped.  Equivalent to [load ~width:W8].
    @raise Invalid_argument on negative address. *)

val store_w8 : t -> int -> int -> unit
(** 8-byte store counterpart of {!load_w8}. *)

val load_f64 : t -> int -> float
(** @raise Invalid_argument on negative address. *)

val store_f64 : t -> int -> float -> unit
(** @raise Invalid_argument on negative address. *)

type cache_stats = { hits : int; misses : int }

val cache_stats : t -> cache_stats
(** Direct-mapped page-translation cache counters: [hits] resolved with one
    array compare, [misses] fell back to the page hashtable. *)

val read_bytes : t -> int -> int -> bytes
(** [read_bytes t addr len] copies out a range (zero where untouched). *)

val write_bytes : t -> int -> bytes -> unit

val read_cstring : t -> ?max:int -> int -> string
(** Read a NUL-terminated string starting at the address (max default 4096).
    @raise Invalid_argument if no NUL within [max] bytes. *)

val page_count : t -> int
(** Allocated pages, for footprint accounting. *)
