module Isa = Tq_isa.Isa

let magic = "TQBIN1\n"

exception Format_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Format_error s)) fmt

(* ---------- primitives (LEB128 shared with the trace format) ---------- *)

let sleb128 = Tq_util.Leb128.write_s

let read_u8 s pos =
  if !pos >= String.length s then fail "truncated (u8 at %d)" !pos;
  let v = Char.code s.[!pos] in
  incr pos;
  v

let read_sleb128 s pos =
  try Tq_util.Leb128.read_s s pos
  with Tq_util.Leb128.Truncated p -> fail "truncated (sleb128 at %d)" p

let write_string buf s =
  sleb128 buf (String.length s);
  Buffer.add_string buf s

let read_string s pos =
  let n = read_sleb128 s pos in
  if n < 0 || !pos + n > String.length s then fail "truncated string at %d" !pos;
  let v = String.sub s !pos n in
  pos := !pos + n;
  v

let write_f64 buf f = Buffer.add_int64_le buf (Int64.bits_of_float f)

let read_f64 s pos =
  if !pos + 8 > String.length s then fail "truncated f64 at %d" !pos;
  let v = ref 0L in
  for i = 7 downto 0 do
    v := Int64.logor (Int64.shift_left !v 8) (Int64.of_int (Char.code s.[!pos + i]))
  done;
  pos := !pos + 8;
  Int64.float_of_bits !v

(* ---------- opcode table ---------- *)

let binop_code = function
  | Isa.Add -> 0 | Sub -> 1 | Mul -> 2 | Div -> 3 | Rem -> 4 | And -> 5
  | Or -> 6 | Xor -> 7 | Sll -> 8 | Srl -> 9 | Sra -> 10 | Slt -> 11
  | Sltu -> 12 | Seq -> 13 | Sne -> 14 | Sle -> 15 | Sge -> 16 | Sgt -> 17

let binop_of_code = function
  | 0 -> Isa.Add | 1 -> Sub | 2 -> Mul | 3 -> Div | 4 -> Rem | 5 -> And
  | 6 -> Or | 7 -> Xor | 8 -> Sll | 9 -> Srl | 10 -> Sra | 11 -> Slt
  | 12 -> Sltu | 13 -> Seq | 14 -> Sne | 15 -> Sle | 16 -> Sge | 17 -> Sgt
  | c -> fail "bad binop code %d" c

let fbinop_code = function Isa.Fadd -> 0 | Fsub -> 1 | Fmul -> 2 | Fdiv -> 3

let fbinop_of_code = function
  | 0 -> Isa.Fadd | 1 -> Fsub | 2 -> Fmul | 3 -> Fdiv
  | c -> fail "bad fbinop code %d" c

let funop_code = function
  | Isa.Fneg -> 0 | Fabs -> 1 | Fsqrt -> 2 | Fsin -> 3 | Fcos -> 4 | Ffloor -> 5

let funop_of_code = function
  | 0 -> Isa.Fneg | 1 -> Fabs | 2 -> Fsqrt | 3 -> Fsin | 4 -> Fcos | 5 -> Ffloor
  | c -> fail "bad funop code %d" c

let fcmp_code = function Isa.Feq -> 0 | Fne -> 1 | Flt -> 2 | Fle -> 3

let fcmp_of_code = function
  | 0 -> Isa.Feq | 1 -> Fne | 2 -> Flt | 3 -> Fle
  | c -> fail "bad fcmp code %d" c

let width_code = function Isa.W1 -> 0 | W2 -> 1 | W4 -> 2 | W8 -> 3

let width_of_code = function
  | 0 -> Isa.W1 | 1 -> W2 | 2 -> W4 | 3 -> W8
  | c -> fail "bad width code %d" c

(* memory-access flag byte: width in low 2 bits, signed bit 2, pred bit 3 *)
let mem_flags ~width ~signed ~pred =
  width_code width lor (if signed then 4 else 0)
  lor (match pred with Some _ -> 8 | None -> 0)

let encode_ins buf (ins : Isa.ins) =
  let op n = Buffer.add_uint8 buf n in
  let reg r = Buffer.add_uint8 buf r in
  match ins with
  | Isa.Nop -> op 0
  | Li (r, v) -> op 1; reg r; sleb128 buf v
  | Mov (d, s) -> op 2; reg d; reg s
  | Bin (o, d, s, Isa.Reg r) -> op 3; Buffer.add_uint8 buf (binop_code o); reg d; reg s; reg r
  | Bin (o, d, s, Isa.Imm v) -> op 4; Buffer.add_uint8 buf (binop_code o); reg d; reg s; sleb128 buf v
  | Fli (r, f) -> op 5; reg r; write_f64 buf f
  | Fmov (d, s) -> op 6; reg d; reg s
  | Fbin (o, d, a, b) -> op 7; Buffer.add_uint8 buf (fbinop_code o); reg d; reg a; reg b
  | Fun (o, d, s) -> op 8; Buffer.add_uint8 buf (funop_code o); reg d; reg s
  | Fcmp (c, d, a, b) -> op 9; Buffer.add_uint8 buf (fcmp_code c); reg d; reg a; reg b
  | I2f (d, s) -> op 10; reg d; reg s
  | F2i (d, s) -> op 11; reg d; reg s
  | Load { width; dst; base; off; pred } ->
      op 12;
      Buffer.add_uint8 buf (mem_flags ~width ~signed:false ~pred);
      reg dst; reg base; sleb128 buf off;
      (match pred with Some p -> reg p | None -> ())
  | Loads { width; dst; base; off } ->
      op 12;
      Buffer.add_uint8 buf (mem_flags ~width ~signed:true ~pred:None);
      reg dst; reg base; sleb128 buf off
  | Store { width; src; base; off; pred } ->
      op 13;
      Buffer.add_uint8 buf (mem_flags ~width ~signed:false ~pred);
      reg src; reg base; sleb128 buf off;
      (match pred with Some p -> reg p | None -> ())
  | Fload { dst; base; off; pred } ->
      op 14;
      Buffer.add_uint8 buf (mem_flags ~width:Isa.W8 ~signed:false ~pred);
      reg dst; reg base; sleb128 buf off;
      (match pred with Some p -> reg p | None -> ())
  | Fstore { src; base; off; pred } ->
      op 15;
      Buffer.add_uint8 buf (mem_flags ~width:Isa.W8 ~signed:false ~pred);
      reg src; reg base; sleb128 buf off;
      (match pred with Some p -> reg p | None -> ())
  | Prefetch { base; off } -> op 16; reg base; sleb128 buf off
  | Movs { dst; src; len } -> op 17; reg dst; reg src; reg len
  | Jmp a -> op 18; sleb128 buf a
  | Jr r -> op 19; reg r
  | Bz (r, a) -> op 20; reg r; sleb128 buf a
  | Bnz (r, a) -> op 21; reg r; sleb128 buf a
  | Call a -> op 22; sleb128 buf a
  | Callr r -> op 23; reg r
  | Ret -> op 24
  | Syscall n -> op 25; sleb128 buf n
  | Halt -> op 26

let decode_ins s pos : Isa.ins =
  let reg () =
    let r = read_u8 s pos in
    if r >= Isa.num_regs then fail "bad register %d at %d" r !pos;
    r
  in
  let mem () =
    let flags = read_u8 s pos in
    let width = width_of_code (flags land 3) in
    let signed = flags land 4 <> 0 in
    let has_pred = flags land 8 <> 0 in
    (width, signed, has_pred)
  in
  match read_u8 s pos with
  | 0 -> Isa.Nop
  | 1 ->
      let r = reg () in
      Li (r, read_sleb128 s pos)
  | 2 ->
      let d = reg () in
      Mov (d, reg ())
  | 3 ->
      let o = binop_of_code (read_u8 s pos) in
      let d = reg () in
      let a = reg () in
      Bin (o, d, a, Isa.Reg (reg ()))
  | 4 ->
      let o = binop_of_code (read_u8 s pos) in
      let d = reg () in
      let a = reg () in
      Bin (o, d, a, Isa.Imm (read_sleb128 s pos))
  | 5 ->
      let r = reg () in
      Fli (r, read_f64 s pos)
  | 6 ->
      let d = reg () in
      Fmov (d, reg ())
  | 7 ->
      let o = fbinop_of_code (read_u8 s pos) in
      let d = reg () in
      let a = reg () in
      Fbin (o, d, a, reg ())
  | 8 ->
      let o = funop_of_code (read_u8 s pos) in
      let d = reg () in
      Fun (o, d, reg ())
  | 9 ->
      let c = fcmp_of_code (read_u8 s pos) in
      let d = reg () in
      let a = reg () in
      Fcmp (c, d, a, reg ())
  | 10 ->
      let d = reg () in
      I2f (d, reg ())
  | 11 ->
      let d = reg () in
      F2i (d, reg ())
  | 12 ->
      let width, signed, has_pred = mem () in
      let dst = reg () in
      let base = reg () in
      let off = read_sleb128 s pos in
      if signed then begin
        if has_pred then fail "predicated sign-extending load at %d" !pos;
        Loads { width; dst; base; off }
      end
      else
        Load { width; dst; base; off; pred = (if has_pred then Some (reg ()) else None) }
  | 13 ->
      let width, _, has_pred = mem () in
      let src = reg () in
      let base = reg () in
      let off = read_sleb128 s pos in
      Store { width; src; base; off; pred = (if has_pred then Some (reg ()) else None) }
  | 14 ->
      let _, _, has_pred = mem () in
      let dst = reg () in
      let base = reg () in
      let off = read_sleb128 s pos in
      Fload { dst; base; off; pred = (if has_pred then Some (reg ()) else None) }
  | 15 ->
      let _, _, has_pred = mem () in
      let src = reg () in
      let base = reg () in
      let off = read_sleb128 s pos in
      Fstore { src; base; off; pred = (if has_pred then Some (reg ()) else None) }
  | 16 ->
      let base = reg () in
      Prefetch { base; off = read_sleb128 s pos }
  | 17 ->
      let dst = reg () in
      let src = reg () in
      Movs { dst; src; len = reg () }
  | 18 -> Jmp (read_sleb128 s pos)
  | 19 -> Jr (reg ())
  | 20 ->
      let r = reg () in
      Bz (r, read_sleb128 s pos)
  | 21 ->
      let r = reg () in
      Bnz (r, read_sleb128 s pos)
  | 22 -> Call (read_sleb128 s pos)
  | 23 -> Callr (reg ())
  | 24 -> Ret
  | 25 -> Syscall (read_sleb128 s pos)
  | 26 -> Halt
  | c -> fail "bad opcode %d at %d" c (!pos - 1)

(* ---------- whole program ---------- *)

let encode (p : Program.t) =
  let buf = Buffer.create 65536 in
  Buffer.add_string buf magic;
  sleb128 buf p.Program.entry;
  sleb128 buf p.Program.data_end;
  (* symbols *)
  let routines = ref [] in
  Symtab.iter (fun r -> routines := r :: !routines) p.Program.symtab;
  let routines = List.rev !routines in
  sleb128 buf (List.length routines);
  List.iter
    (fun (r : Symtab.routine) ->
      write_string buf r.name;
      sleb128 buf r.entry;
      sleb128 buf r.size;
      write_string buf r.image;
      Buffer.add_uint8 buf (if r.is_main_image then 1 else 0))
    routines;
  (* data segments *)
  sleb128 buf (List.length p.Program.data);
  List.iter
    (fun (addr, bytes) ->
      sleb128 buf addr;
      write_string buf bytes)
    p.Program.data;
  (* code *)
  sleb128 buf (Array.length p.Program.code);
  Array.iter (encode_ins buf) p.Program.code;
  Buffer.contents buf

let decode s =
  if String.length s < String.length magic
     || String.sub s 0 (String.length magic) <> magic
  then fail "bad magic";
  let pos = ref (String.length magic) in
  let entry = read_sleb128 s pos in
  let data_end = read_sleb128 s pos in
  let n_routines = read_sleb128 s pos in
  if n_routines < 0 then fail "negative routine count";
  let routines =
    List.init n_routines (fun _ ->
        let name = read_string s pos in
        let entry = read_sleb128 s pos in
        let size = read_sleb128 s pos in
        let image = read_string s pos in
        let is_main_image = read_u8 s pos <> 0 in
        { Symtab.id = 0; name; entry; size; image; is_main_image })
  in
  let n_data = read_sleb128 s pos in
  if n_data < 0 then fail "negative data count";
  let data =
    List.init n_data (fun _ ->
        let addr = read_sleb128 s pos in
        let bytes = read_string s pos in
        (addr, bytes))
  in
  let n_ins = read_sleb128 s pos in
  if n_ins < 0 then fail "negative instruction count";
  let code = Array.init n_ins (fun _ -> decode_ins s pos) in
  if !pos <> String.length s then fail "trailing bytes at %d" !pos;
  let symtab =
    try Symtab.build routines
    with Invalid_argument msg -> fail "invalid symbol table: %s" msg
  in
  { Program.code; entry; data; data_end; symtab }

let write_file path p =
  let oc = open_out_bin path in
  output_string oc (encode p);
  close_out oc

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  decode s

let is_objfile s =
  String.length s >= String.length magic
  && String.sub s 0 (String.length magic) = magic
