type t = {
  code : Tq_isa.Isa.ins array;
  entry : int;
  data : (int * string) list;
  data_end : int;
  symtab : Symtab.t;
}

let addr_of_index i = Layout.text_base + (i * Tq_isa.Isa.ins_bytes)

let index_of_addr t addr =
  let off = addr - Layout.text_base in
  if off < 0 || off mod Tq_isa.Isa.ins_bytes <> 0 then
    invalid_arg (Printf.sprintf "Program: bad code address 0x%x" addr);
  let i = off / Tq_isa.Isa.ins_bytes in
  if i >= Array.length t.code then
    invalid_arg (Printf.sprintf "Program: code address 0x%x out of range" addr);
  i

let fetch t addr = t.code.(index_of_addr t addr)

(* FNV-1a 64 over everything that determines execution: entry point, every
   instruction's rendering, the symbol table, and initialized data.  Strings
   are length-prefixed so field boundaries cannot alias. *)
let fingerprint t =
  let fnv_prime = 0x100000001b3L in
  let h = ref 0xcbf29ce484222325L in
  let byte b =
    h := Int64.mul (Int64.logxor !h (Int64.of_int (b land 0xff))) fnv_prime
  in
  let int v =
    for i = 0 to 7 do
      byte ((v lsr (8 * i)) land 0xff)
    done
  in
  let str s =
    int (String.length s);
    String.iter (fun c -> byte (Char.code c)) s
  in
  int t.entry;
  int (Array.length t.code);
  Array.iter (fun ins -> str (Tq_isa.Isa.to_string ins)) t.code;
  Symtab.iter
    (fun r ->
      str r.Symtab.name;
      int r.Symtab.entry;
      int r.Symtab.size;
      str r.Symtab.image;
      byte (if r.Symtab.is_main_image then 1 else 0))
    t.symtab;
  List.iter
    (fun (addr, s) ->
      int addr;
      str s)
    t.data;
  int t.data_end;
  !h

let disassemble t =
  let buf = Buffer.create 4096 in
  Array.iteri
    (fun i ins ->
      let addr = addr_of_index i in
      (match Symtab.find t.symtab addr with
      | Some r when r.entry = addr ->
          Buffer.add_string buf
            (Printf.sprintf "\n<%s> (%s%s):\n" r.name r.image
               (if r.is_main_image then "" else ", library"))
      | _ -> ());
      Buffer.add_string buf
        (Printf.sprintf "  0x%06x: %s\n" addr (Tq_isa.Isa.to_string ins)))
    t.code;
  Buffer.contents buf
