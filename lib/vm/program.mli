(** A fully linked program: flat code array, initial data image, entry point
    and symbol table.  Produced by the assembler/linker ([Tq_asm.Link]) and
    consumed by the loader ([Machine.create]) and the DBI engine. *)

type t = {
  code : Tq_isa.Isa.ins array;
  entry : int;  (** code address where execution starts *)
  data : (int * string) list;  (** (address, bytes) initial data segments *)
  data_end : int;  (** first address past static data = initial brk *)
  symtab : Symtab.t;
}

val addr_of_index : int -> int
(** Code address of instruction [i] ([Layout.text_base + 4*i]). *)

val index_of_addr : t -> int -> int
(** Inverse of [addr_of_index].
    @raise Invalid_argument if out of the code range or misaligned. *)

val fetch : t -> int -> Tq_isa.Isa.ins
(** [fetch t addr]. @raise Invalid_argument on a bad address. *)

val fingerprint : t -> int64
(** Stable 64-bit digest (FNV-1a) of everything that determines execution:
    entry point, code, symbol table and initialized data.  Embedded in trace
    containers so a recording can be matched to the program that produced
    it. *)

val disassemble : t -> string
(** Full listing with routine headers, for debugging and the CLI's
    [disasm] subcommand. *)
