module Vfs = Tq_vm.Vfs
module Machine = Tq_vm.Machine

let compile ?optimize scen =
  Tq_rt.Rt.link
    [
      Tq_minic.Driver.compile_unit ?optimize ~verify:true ~image:"wfs"
        (Source.generate scen);
    ]

let le64 v =
  String.init 8 (fun i -> Char.chr ((v lsr (8 * i)) land 0xff))

let make_vfs (scen : Scenario.t) =
  let vfs = Vfs.create () in
  Vfs.install vfs "input.wav" (Tq_wav.Wav.encode (Scenario.input scen));
  Vfs.install vfs "config.bin" (le64 scen.sample_rate ^ le64 scen.chunks);
  vfs

let machine scen = Machine.create ~vfs:(make_vfs scen) (compile scen)

let fuel (scen : Scenario.t) =
  (* empirical per-chunk cost plus wav_store, with a wide margin *)
  let per_chunk = 2000 * (scen.fft_n * 8 / 10 + scen.speakers * scen.frame / 2) in
  max 50_000_000 (scen.chunks * per_chunk)

let run_plain scen =
  let m = machine scen in
  Tq_vm.Executor.run ~fuel:(fuel scen) m;
  (match Machine.exit_code m with
  | Some 0 -> ()
  | Some c ->
      failwith
        (Printf.sprintf "wfs exited with %d; console: %s" c
           (Machine.stdout_contents m))
  | None -> failwith "wfs did not exit");
  m

let output_bytes m =
  match Vfs.contents (Machine.vfs m) "output.wav" with
  | Some s -> s
  | None -> failwith "wfs produced no output.wav"
