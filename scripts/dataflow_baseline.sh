#!/bin/sh
# Canonical summary of `tquad check --dataflow` over every example, both
# demo apps and the tiny wfs scenario.  CI regenerates this and diffs it
# against the committed test/dataflow_baseline.txt — any change to trip
# counts, access-pattern classification or diagnostic totals must come
# with a baseline update in the same commit.
#
# Usage: scripts/dataflow_baseline.sh <path-to-tquad_cli.exe>
set -e
CLI="$1"
summarize() {
  # keep the stable lines: check totals, per-loop trips, summary counters
  grep -E '^(check:|  loop @|loops:)' || true
}
for f in examples/mc/*.mc; do
  echo "== $f"
  "$CLI" check --dataflow "$f" 2>/dev/null | summarize
done
for app in image-pipeline pointer-chase; do
  echo "== app:$app"
  "$CLI" check --dataflow --app "$app" 2>/dev/null | summarize
done
echo "== wfs:tiny"
"$CLI" check --dataflow --wfs tiny 2>/dev/null | summarize
