(* The serve path's fault-tolerance contracts: the frame codec refuses every
   truncation and every out-of-bounds length at the exact max_frame boundary,
   deadlines turn stalled peers into typed timeouts, the job watchdog and
   cancellation token kill whole jobs with typed failures and free their
   slots, the client retry policy backs off exactly as specified, and — the
   headline qcheck property — a server under a storm of malformed wire bytes
   never dies and keeps serving healthy clients byte-identical reports. *)

open Tq_vm
open Tq_dbi
module Reader = Tq_trace.Reader
module Replay = Tq_trace.Replay
module Probe = Tq_trace.Probe
module Lru = Tq_serve.Lru
module Protocol = Tq_serve.Protocol
module Toolset = Tq_serve.Toolset
module Jobs = Tq_serve.Jobs
module Server = Tq_serve.Server
module Client = Tq_serve.Client
module Wire = Tq_faultgen.Wire
module Json = Tq_obs.Json

(* ---------- fixture (same shape as test_serve's, recorded once) ---------- *)

let src =
  "int buf[256];\n\
   void fill(int k) { for (int i = 0; i < 256; i++) buf[i] = i + k; }\n\
   int total() { int s; s = 0; for (int i = 0; i < 256; i++) s += buf[i];\n\
  \              return s; }\n\
   int main() { int t; t = 0;\n\
  \             for (int r = 0; r < 40; r++) { fill(r); t += total(); }\n\
  \             return t - t; }"

let fixture =
  lazy
    (let prog =
       Tq_rt.Rt.link [ Tq_minic.Driver.compile_unit ~image:"app" src ]
     in
     let m = Machine.create prog in
     let eng = Engine.create m in
     let path = Filename.temp_file "tq_chaos_test" ".trc" in
     let _events : int = Probe.record ~chunk_bytes:4096 eng ~path in
     let ic = open_in_bin path in
     let bytes =
       Fun.protect
         ~finally:(fun () -> close_in_noerr ic)
         (fun () -> really_input_string ic (in_channel_length ic))
     in
     Sys.remove path;
     (prog, bytes))

let fresh_reader () =
  let _, bytes = Lazy.force fixture in
  Reader.of_string bytes

(* ---------- frame matrix: lengths at the boundary ---------- *)

(* A hand-framed message: 4-byte big-endian length prefix + payload.  Built
   without Protocol on purpose — the matrix attacks read_frame, so the
   attacking bytes must not come from the code under test. *)
let raw_frame ?claim payload =
  let len = String.length payload in
  let b = Bytes.create (4 + len) in
  Bytes.set_int32_be b 0 (Int32.of_int (Option.value claim ~default:len));
  Bytes.blit_string payload 0 b 4 len;
  b

let feed bytes =
  let rd, wr = Unix.pipe () in
  ignore (Unix.write wr bytes 0 (Bytes.length bytes));
  Unix.close wr;
  rd

let test_frame_boundary_exact () =
  (* a payload of exactly max_frame bytes passes; one byte more is refused
     on both the read and the write side.  max_frame:64 keeps the test from
     allocating 256 MiB. *)
  let payload = "\"" ^ String.make 62 'x' ^ "\"" in
  Alcotest.(check int) "payload is exactly the cap" 64 (String.length payload);
  let rd = feed (raw_frame payload) in
  (match Protocol.read_frame ~max_frame:64 rd with
  | Some (Json.Str s) -> Alcotest.(check int) "payload intact" 62 (String.length s)
  | _ -> Alcotest.fail "exact-boundary frame must decode");
  Unix.close rd;
  (* one below: still fine *)
  let small = "\"" ^ String.make 61 'x' ^ "\"" in
  let rd = feed (raw_frame small) in
  (match Protocol.read_frame ~max_frame:64 rd with
  | Some (Json.Str _) -> ()
  | _ -> Alcotest.fail "below-boundary frame must decode");
  Unix.close rd;
  (* one above: refused before any payload read *)
  let rd = feed (raw_frame ~claim:65 payload) in
  (match Protocol.read_frame ~max_frame:64 rd with
  | _ -> Alcotest.fail "over-boundary length accepted"
  | exception Protocol.Frame_error _ -> ());
  Unix.close rd

let test_frame_negative_length () =
  List.iter
    (fun claim ->
      let rd = feed (raw_frame ~claim "x") in
      (match Protocol.read_frame rd with
      | _ -> Alcotest.fail "negative length accepted"
      | exception Protocol.Frame_error _ -> ());
      Unix.close rd)
    [ -1; 0x80000000 (* truncates to the 32-bit sign bit *) ]

let test_frame_garbage_payload () =
  let rd = feed (raw_frame "\x00not json at all") in
  (match Protocol.read_frame rd with
  | _ -> Alcotest.fail "garbage payload accepted"
  | exception Protocol.Frame_error _ -> ());
  Unix.close rd

let test_frame_truncation_matrix () =
  (* every proper prefix of a valid frame: length 0 is a clean EOF (None),
     every other truncation point must raise End_of_file — never hang,
     never mis-decode.  Exhaustive over all split points. *)
  let whole = raw_frame {|{"op":"ping"}|} in
  let total = Bytes.length whole in
  for keep = 0 to total - 1 do
    let rd = feed (Bytes.sub whole 0 keep) in
    (match Protocol.read_frame rd with
    | None when keep = 0 -> ()
    | None -> Alcotest.failf "prefix %d: reported clean EOF" keep
    | Some _ -> Alcotest.failf "prefix %d: decoded a truncated frame" keep
    | exception End_of_file ->
        if keep = 0 then Alcotest.fail "empty stream must be None, not EOF");
    Unix.close rd
  done;
  (* the whole frame, for contrast, decodes *)
  let rd = feed whole in
  (match Protocol.read_frame rd with
  | Some _ -> ()
  | None -> Alcotest.fail "whole frame must decode");
  Unix.close rd

let test_write_oversized_refused () =
  let rd, wr = Unix.pipe () in
  (match Protocol.write_frame ~max_frame:8 wr (Json.Str (String.make 32 'x')) with
  | _ -> Alcotest.fail "oversized write accepted"
  | exception Protocol.Frame_error _ -> ());
  Unix.close rd;
  Unix.close wr

(* ---------- deadlines on the socket ---------- *)

let test_idle_timeout_fires () =
  let rd, wr = Unix.pipe () in
  let t0 = Unix.gettimeofday () in
  (match Protocol.read_frame ~idle_timeout_s:0.05 ~frame_timeout_s:30. rd with
  | _ -> Alcotest.fail "idle read must time out"
  | exception Protocol.Timeout _ -> ());
  Alcotest.(check bool) "fired promptly" true
    (Unix.gettimeofday () -. t0 < 5.);
  Unix.close rd;
  Unix.close wr

let test_frame_timeout_fires_after_first_byte () =
  (* one header byte arrives, then nothing: the (long) idle budget no longer
     applies, the (short) frame budget does — the slow-loris defense *)
  let rd, wr = Unix.pipe () in
  ignore (Unix.write wr (Bytes.make 1 '\x00') 0 1);
  (match Protocol.read_frame ~idle_timeout_s:30. ~frame_timeout_s:0.05 rd with
  | _ -> Alcotest.fail "stalled frame must time out"
  | exception Protocol.Timeout _ -> ());
  Unix.close rd;
  Unix.close wr

let test_dribbled_frame_completes () =
  (* a slow but live peer inside its frame budget is not a fault: a frame
     dribbled byte-by-byte decodes normally *)
  let rd, wr = Unix.pipe () in
  let whole = raw_frame {|{"op":"ping"}|} in
  let writer =
    Thread.create
      (fun () ->
        Bytes.iter
          (fun c ->
            ignore (Unix.write wr (Bytes.make 1 c) 0 1);
            Thread.delay 0.002)
          whole;
        Unix.close wr)
      ()
  in
  (match Protocol.read_frame ~idle_timeout_s:10. ~frame_timeout_s:10. rd with
  | Some j -> (
      match Json.member "op" j with
      | Some (Json.Str "ping") -> ()
      | _ -> Alcotest.fail "dribbled frame decoded wrong")
  | None -> Alcotest.fail "dribbled frame lost");
  Thread.join writer;
  Unix.close rd

let test_write_timeout_on_stuffed_pipe () =
  (* a peer that stops reading cannot pin the writer: the pipe's buffer
     fills and the deadline fires *)
  let rd, wr = Unix.pipe () in
  let big = Json.Str (String.make (4 * 1024 * 1024) 'x') in
  (match Protocol.write_frame ~timeout_s:0.05 wr big with
  | _ -> Alcotest.fail "write into a full pipe must time out"
  | exception Protocol.Timeout _ -> ());
  Unix.close rd;
  Unix.close wr

(* ---------- job watchdog and cancellation (deterministic) ---------- *)

let spec_of ?(tools = [ "gprof" ]) reader prog =
  Jobs.{ trace_key = 42L; reader; prog; tools; slice = 2_000; period = 2_000 }

let test_jobs_cancel_queued () =
  let prog, _ = Lazy.force fixture in
  let reader = fresh_reader () in
  let cache = Lru.create ~capacity:(256 * 1024 * 1024) in
  let j = Jobs.create ~workers:0 ~queue_limit:4 ~cache () in
  let id =
    Result.get_ok
      (Jobs.submit j (spec_of ~tools:[ "gprof"; "tquad" ] reader prog))
  in
  Alcotest.(check bool) "unknown id refuses" false (Jobs.cancel j 999);
  Alcotest.(check bool) "cancel accepted" true
    (Jobs.cancel ~reason:"test pulled the plug" j id);
  Alcotest.(check bool) "idempotent while live" true (Jobs.cancel j id);
  Alcotest.(check bool) "step runs it" true (Jobs.step j);
  (match Jobs.status j id with
  | Jobs.Done results ->
      Alcotest.(check bool) "verdict is cancelled" true
        (Jobs.killed results = Some `Cancelled);
      List.iter
        (fun (name, o) ->
          match o with
          | Error f ->
              (* the registered printer renders the typed exception with
                 the caller's reason *)
              let msg = Replay.failure_message f in
              let has_reason =
                let needle = "test pulled the plug" in
                let nl = String.length needle and ml = String.length msg in
                let rec scan i =
                  i + nl <= ml
                  && (String.sub msg i nl = needle || scan (i + 1))
                in
                scan 0
              in
              Alcotest.(check bool) (name ^ " carries the reason") true
                has_reason
          | Ok _ -> Alcotest.fail (name ^ ": cancelled job produced a report"))
        results
  | _ -> Alcotest.fail "cancelled job must still finish Done");
  Alcotest.(check bool) "finished job refuses cancel" false (Jobs.cancel j id);
  let s = Jobs.stats j in
  Alcotest.(check int) "cancelled_jobs" 1 s.Jobs.cancelled_jobs;
  Alcotest.(check int) "counted failed" 1 s.Jobs.failed_jobs;
  Alcotest.(check int) "queue empty" 0 s.Jobs.depth;
  Alcotest.(check int) "nothing running" 0 s.Jobs.running;
  Jobs.drain j

let test_jobs_deadline_exceeded () =
  let prog, _ = Lazy.force fixture in
  let reader = fresh_reader () in
  let cache = Lru.create ~capacity:(256 * 1024 * 1024) in
  let j = Jobs.create ~workers:0 ~queue_limit:4 ~cache () in
  let id = Result.get_ok (Jobs.submit ~deadline_s:1e-9 j (spec_of reader prog)) in
  (* the budget covers queue wait, so by the time the job is popped it is
     already over it and fails fast *)
  Thread.delay 0.002;
  Alcotest.(check bool) "step runs it" true (Jobs.step j);
  (match Jobs.status j id with
  | Jobs.Done results ->
      Alcotest.(check bool) "verdict is deadline-exceeded" true
        (Jobs.killed results = Some `Deadline_exceeded)
  | _ -> Alcotest.fail "timed-out job must still finish Done");
  let s = Jobs.stats j in
  Alcotest.(check int) "timed_out_jobs" 1 s.Jobs.timed_out_jobs;
  Alcotest.(check int) "slot freed" 0 s.Jobs.running;
  (* the pool still works: an unbudgeted job on the same pool completes *)
  let id2 = Result.get_ok (Jobs.submit j (spec_of reader prog)) in
  ignore (Jobs.step j);
  (match Jobs.status j id2 with
  | Jobs.Done [ ("gprof", Ok _) ] -> ()
  | _ -> Alcotest.fail "pool must keep serving after a timeout");
  Jobs.drain j

let test_jobs_default_deadline () =
  let prog, _ = Lazy.force fixture in
  let reader = fresh_reader () in
  let cache = Lru.create ~capacity:(256 * 1024 * 1024) in
  let j =
    Jobs.create ~workers:0 ~default_deadline_s:1e-9 ~queue_limit:4 ~cache ()
  in
  let id = Result.get_ok (Jobs.submit j (spec_of reader prog)) in
  Thread.delay 0.002;
  ignore (Jobs.step j);
  (match Jobs.status j id with
  | Jobs.Done results ->
      Alcotest.(check bool) "pool default applies" true
        (Jobs.killed results = Some `Deadline_exceeded)
  | _ -> Alcotest.fail "job must finish");
  Jobs.drain j

(* ---------- client retry policy (pure, injected clock) ---------- *)

let busy_err after =
  Client.
    { kind = "busy"; reason = "queue full"; retry_after_s = Some after }

let test_retry_backoff_honours_hint () =
  let sleeps = ref [] in
  let calls = ref 0 in
  let policy =
    Client.{ retries = 5; base_s = 0.1; factor = 2.; max_s = 5.; jitter = 0. }
  in
  let result =
    Client.with_retry ~policy
      ~sleep:(fun d -> sleeps := d :: !sleeps)
      (fun ~attempt ->
        incr calls;
        Alcotest.(check int) "attempt numbering" !calls attempt;
        if attempt < 3 then Error (busy_err 0.5) else Ok attempt)
  in
  Alcotest.(check int) "succeeded on attempt 3" 3 (Result.get_ok result);
  (* both delays floor at the server's 0.5s hint (backoff would be 0.1/0.2) *)
  Alcotest.(check (list (float 1e-9))) "hint floors the backoff" [ 0.5; 0.5 ]
    (List.rev !sleeps)

let test_retry_exponential_when_no_hint () =
  let sleeps = ref [] in
  let policy =
    Client.{ retries = 4; base_s = 0.1; factor = 2.; max_s = 0.35; jitter = 0. }
  in
  let result =
    Client.with_retry ~policy
      ~sleep:(fun d -> sleeps := d :: !sleeps)
      (fun ~attempt:_ ->
        Error Client.{ kind = "transport"; reason = "gone"; retry_after_s = None })
  in
  (match result with
  | Error e -> Alcotest.(check string) "last error surfaces" "transport" e.Client.kind
  | Ok _ -> Alcotest.fail "must exhaust the budget");
  Alcotest.(check (list (float 1e-9))) "doubles then caps"
    [ 0.1; 0.2; 0.35; 0.35 ] (List.rev !sleeps)

let test_retry_terminal_kinds_fail_fast () =
  List.iter
    (fun kind ->
      let calls = ref 0 in
      let result =
        Client.with_retry
          ~policy:Client.{ default_policy with retries = 5 }
          ~sleep:(fun _ -> Alcotest.fail "terminal errors must not sleep")
          (fun ~attempt:_ ->
            incr calls;
            Error Client.{ kind; reason = "no"; retry_after_s = None })
      in
      Alcotest.(check bool) (kind ^ " is terminal") true (Result.is_error result);
      Alcotest.(check int) (kind ^ " tried once") 1 !calls)
    [ Protocol.bad_request; Protocol.not_found; Protocol.bad_trace;
      Protocol.shutting_down; Protocol.server_error ]

let test_backoff_jitter_bounds () =
  let policy =
    Client.{ retries = 1; base_s = 1.; factor = 2.; max_s = 4.; jitter = 0.5 }
  in
  (* rand pinned high: the full jitter fraction is shaved off *)
  Alcotest.(check (float 1e-9)) "max jitter shaves half" 0.5
    (Client.backoff_delay ~rand:(fun _ -> 1.0) policy ~attempt:1
       ~retry_after_s:None);
  (* rand pinned low: the undithered exponential *)
  Alcotest.(check (float 1e-9)) "zero jitter keeps the exponential" 2.
    (Client.backoff_delay ~rand:(fun _ -> 0.) policy ~attempt:2
       ~retry_after_s:None);
  (* deep attempts cap at max_s before jitter *)
  Alcotest.(check (float 1e-9)) "cap holds" 4.
    (Client.backoff_delay ~rand:(fun _ -> 0.) policy ~attempt:10
       ~retry_after_s:None)

(* ---------- server under fire ---------- *)

let tmp_socket () =
  let path = Filename.temp_file "tq_chaos" ".sock" in
  Sys.remove path;
  path

let start_server cfg =
  let ready_m = Mutex.create () and ready_c = Condition.create () in
  let ready = ref false in
  let th =
    Thread.create
      (fun () ->
        Server.run ~handle_signals:false
          ~on_ready:(fun () ->
            Mutex.lock ready_m;
            ready := true;
            Condition.signal ready_c;
            Mutex.unlock ready_m)
          cfg)
      ()
  in
  Mutex.lock ready_m;
  while not !ready do
    Condition.wait ready_c ready_m
  done;
  Mutex.unlock ready_m;
  th

let stop_server socket th =
  (* under a connection cap the shutdown connect can race a just-closed
     client's deregistration and be refused busy — retry until the server
     actually accepts the drain, or joining [th] would hang forever *)
  let result =
    Client.with_retry
      ~policy:
        Client.
          { retries = 20; base_s = 0.02; factor = 1.5; max_s = 0.2; jitter = 0. }
      ~sleep:Thread.delay
      ~rand:(fun _ -> 0.)
      (fun ~attempt:_ ->
        match Client.connect socket with
        | Error e -> Error e
        | Ok c ->
            Fun.protect
              ~finally:(fun () -> Client.close c)
              (fun () -> Client.shutdown c))
  in
  (match result with
  | Ok () -> ()
  | Error e -> Alcotest.fail ("server refused to drain: " ^ e.Client.reason));
  Thread.join th

let stat_int server path =
  let rec walk j = function
    | [] -> ( match j with Json.Int n -> Some n | _ -> None)
    | k :: rest -> (
        match Json.member k j with Some j' -> walk j' rest | None -> None)
  in
  walk server path

let test_server_reaps_slow_loris () =
  let socket = tmp_socket () in
  let cfg =
    {
      (Server.default ~socket_path:socket) with
      Server.workers = 1;
      idle_timeout_s = 5.;
      frame_timeout_s = 0.15;
    }
  in
  let th = start_server cfg in
  (* a peer that sends one header byte and stalls: reaped with a typed
     timeout frame once the frame budget elapses *)
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX socket);
  ignore (Unix.write fd (Bytes.make 1 '\x00') 0 1);
  (match Protocol.read_frame ~idle_timeout_s:5. fd with
  | Some resp ->
      Alcotest.(check bool) "refusal is not ok" true
        (Protocol.get_bool "ok" resp = Some false);
      Alcotest.(check (option string)) "typed timeout kind"
        (Some Protocol.timeout)
        (Protocol.get_str "error" resp)
  | None -> Alcotest.fail "server closed without the typed timeout frame");
  Unix.close fd;
  (* the server is unharmed and counts the reap *)
  let c = Result.get_ok (Client.connect socket) in
  Alcotest.(check bool) "healthy after reap" true (Client.ping c = Ok ());
  let server = Result.get_ok (Client.stats c) in
  Alcotest.(check (option int)) "reap counted" (Some 1)
    (stat_int server [ "reaped_connections" ]);
  Client.close c;
  stop_server socket th

let test_server_connection_cap () =
  let socket = tmp_socket () in
  let cfg =
    {
      (Server.default ~socket_path:socket) with
      Server.workers = 1;
      max_connections = 1;
    }
  in
  let th = start_server cfg in
  let c1 = Result.get_ok (Client.connect socket) in
  (* ping's response proves the server registered c1 before we probe the cap *)
  Alcotest.(check bool) "first connection serves" true (Client.ping c1 = Ok ());
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX socket);
  (match Protocol.read_frame ~idle_timeout_s:5. fd with
  | Some resp ->
      Alcotest.(check (option string)) "typed busy refusal"
        (Some Protocol.busy)
        (Protocol.get_str "error" resp);
      Alcotest.(check bool) "carries a retry hint" true
        (Protocol.get_num "retry_after_s" resp <> None)
  | None -> Alcotest.fail "over-cap peer got no refusal frame");
  (* ... and the refused socket is closed server-side *)
  Alcotest.(check bool) "refused connection closes" true
    (Protocol.read_frame ~idle_timeout_s:5. fd = None);
  Unix.close fd;
  (* the resident connection still works; freeing it reopens the door *)
  Alcotest.(check bool) "resident unaffected" true (Client.ping c1 = Ok ());
  let server = Result.get_ok (Client.stats c1) in
  Alcotest.(check (option int)) "refusal counted" (Some 1)
    (stat_int server [ "refused_connections" ]);
  Client.close c1;
  let rec reconnect tries =
    (* the server notices c1's close asynchronously *)
    let c = Result.get_ok (Client.connect socket) in
    match Client.ping c with
    | Ok () -> Client.close c
    | Error _ when tries > 0 ->
        Client.close c;
        Thread.delay 0.02;
        reconnect (tries - 1)
    | Error e -> Alcotest.fail ("slot never freed: " ^ e.Client.reason)
  in
  reconnect 100;
  stop_server socket th

let test_server_job_deadline_typed_and_slot_freed () =
  let prog, bytes = Lazy.force fixture in
  let socket = tmp_socket () in
  let cfg =
    { (Server.default ~socket_path:socket) with Server.workers = 1 }
  in
  let th = start_server cfg in
  let c = Result.get_ok (Client.connect socket) in
  let id =
    Result.get_ok (Client.upload ~program:(Objfile.encode prog) ~trace:bytes c)
  in
  (* a client-supplied deadline far below the server default: the watchdog
     kills the job with a typed verdict before (or between) chunks *)
  let jid = Result.get_ok (Client.replay ~deadline_s:1e-9 c id) in
  let rep = Result.get_ok (Client.report ~wait:true c jid) in
  Alcotest.(check bool) "job completed" true rep.Client.done_;
  Alcotest.(check (option string)) "typed verdict"
    (Some "deadline-exceeded") rep.Client.killed;
  Alcotest.(check bool) "every tool failed typed" true
    (rep.Client.reports = [] && rep.Client.failures <> []);
  (* the worker slot is free: a healthy replay on the same pool matches a
     direct replay byte-for-byte *)
  let jid2 = Result.get_ok (Client.replay ~slice:2_000 ~period:2_000 c id) in
  let rep2 = Result.get_ok (Client.report ~wait:true c jid2) in
  Alcotest.(check (option string)) "healthy job has no verdict" None
    rep2.Client.killed;
  let direct =
    Replay.sequential (fresh_reader ())
      (List.map
         (fun name ->
           Result.get_ok (Toolset.job ~prog ~slice:2_000 ~period:2_000 name))
         Toolset.names)
  in
  List.iter
    (fun (name, outcome) ->
      match (outcome, List.assoc_opt name rep2.Client.reports) with
      | Ok want, Some got ->
          Alcotest.(check string) (name ^ " identical after timeout") want got
      | _ -> Alcotest.fail (name ^ ": missing report"))
    direct;
  let server = Result.get_ok (Client.stats c) in
  Alcotest.(check (option int)) "timeout counted" (Some 1)
    (stat_int server [ "queue"; "timed_out_jobs" ]);
  Alcotest.(check (option int)) "accounting back to zero" (Some 0)
    (stat_int server [ "queue"; "running" ]);
  Alcotest.(check (option int)) "queue drained" (Some 0)
    (stat_int server [ "queue"; "depth" ]);
  Client.close c;
  stop_server socket th

let test_server_attach_cancels_on_disconnect () =
  let prog, bytes = Lazy.force fixture in
  let socket = tmp_socket () in
  let cfg =
    {
      (Server.default ~socket_path:socket) with
      Server.workers = 1;
      rate = 1000.;
      burst = 1000;
    }
  in
  let th = start_server cfg in
  let c1 = Result.get_ok (Client.connect socket) in
  let id =
    Result.get_ok (Client.upload ~program:(Objfile.encode prog) ~trace:bytes c1)
  in
  (* keep the single worker busy so the attached job sits in the queue long
     enough for the disconnect to land first *)
  let backlog =
    List.init 4 (fun _ -> Result.get_ok (Client.replay c1 id))
  in
  let c2 = Result.get_ok (Client.connect socket) in
  let jid = Result.get_ok (Client.replay ~attach:true c2 id) in
  Client.close c2 (* hang up: the server owes this job a cancellation *);
  List.iter (fun j -> ignore (Result.get_ok (Client.report ~wait:true c1 j))) backlog;
  let rep = Result.get_ok (Client.report ~wait:true c1 jid) in
  (* timing-tolerant: the job may have squeaked through if the worker got to
     it before the disconnect, but the normal path is a typed cancellation —
     and in either case the server must stay consistent *)
  (match rep.Client.killed with
  | Some "cancelled" ->
      Alcotest.(check bool) "cancelled job reports nothing" true
        (rep.Client.reports = [])
  | Some other -> Alcotest.fail ("unexpected verdict: " ^ other)
  | None -> ());
  let server = Result.get_ok (Client.stats c1) in
  Alcotest.(check (option int)) "accounting back to zero" (Some 0)
    (stat_int server [ "queue"; "running" ]);
  Alcotest.(check (option int)) "queue drained" (Some 0)
    (stat_int server [ "queue"; "depth" ]);
  Client.close c1;
  stop_server socket th

let test_cli_retry_reaches_server_counter () =
  (* end-to-end: a retried request (attempt > 1) bumps retries_observed *)
  let socket = tmp_socket () in
  let cfg = { (Server.default ~socket_path:socket) with Server.workers = 1 } in
  let th = start_server cfg in
  let result =
    Client.with_retry
      ~policy:Client.{ default_policy with retries = 2; base_s = 0.001 }
      (fun ~attempt ->
        match Client.connect ~attempt socket with
        | Error e -> Error e
        | Ok c ->
            Fun.protect
              ~finally:(fun () -> Client.close c)
              (fun () ->
                (* fail the first attempt artificially to force a retry *)
                if attempt = 1 then
                  Error
                    Client.
                      { kind = "transport"; reason = "injected"; retry_after_s = None }
                else Result.map (fun () -> attempt) (Client.ping c)))
  in
  Alcotest.(check int) "second attempt won" 2 (Result.get_ok result);
  let c = Result.get_ok (Client.connect socket) in
  let server = Result.get_ok (Client.stats c) in
  Alcotest.(check (option int)) "server saw the retry" (Some 1)
    (stat_int server [ "retries_observed" ]);
  Client.close c;
  stop_server socket th

(* ---------- the qcheck chaos property ---------- *)

(* For ANY storm of malformed wire bytes: the server never dies, answers
   every strike with a typed refusal / reap / clean close (never silence,
   never a crash), stays reachable for a healthy hand-rolled ping after each
   strike, and its accounting returns to zero. *)
let qcheck_wire_storm_never_kills_server =
  let socket = tmp_socket () in
  let cfg =
    {
      (Server.default ~socket_path:socket) with
      Server.workers = 1;
      idle_timeout_s = 5.;
      frame_timeout_s = 0.1;
      max_connections = 32;
    }
  in
  let th = ref None in
  let ensure_server () =
    match !th with
    | Some _ -> ()
    | None -> th := Some (start_server cfg)
  in
  let teardown () =
    match !th with
    | Some t ->
        stop_server socket t;
        th := None
    | None -> ()
  in
  let test =
    QCheck.Test.make ~name:"wire storm: server survives any byte stream"
      ~count:40 QCheck.small_int (fun seed ->
        ensure_server ();
        let mut = Wire.random ~seed in
        let verdict = Wire.strike ~wait_s:5. ~socket mut in
        (match verdict with
        | Wire.Unreachable why ->
            QCheck.Test.fail_reportf "server unreachable after %s: %s"
              (Wire.describe mut) why
        | Wire.Silent ->
            QCheck.Test.fail_reportf "server went silent on %s"
              (Wire.describe mut)
        | Wire.Rejected _ | Wire.Accepted | Wire.Closed -> ());
        (* the next healthy client must still be served *)
        match Wire.ping ~socket () with
        | Ok () -> true
        | Error why ->
            QCheck.Test.fail_reportf "health probe failed after %s: %s"
              (Wire.describe mut) why)
  in
  (* wrap so the server is torn down (and the byte-identical final check
     runs) whatever order alcotest executes in *)
  let final () =
    ensure_server ();
    let prog, bytes = Lazy.force fixture in
    let c = Result.get_ok (Client.connect socket) in
    let id =
      Result.get_ok (Client.upload ~program:(Objfile.encode prog) ~trace:bytes c)
    in
    let jid = Result.get_ok (Client.replay ~slice:2_000 ~period:2_000 c id) in
    let rep = Result.get_ok (Client.report ~wait:true c jid) in
    Alcotest.(check (list string)) "no failures after the storm" []
      (List.map fst rep.Client.failures);
    let direct =
      Replay.sequential (Reader.of_string bytes)
        (List.map
           (fun name ->
             Result.get_ok (Toolset.job ~prog ~slice:2_000 ~period:2_000 name))
           Toolset.names)
    in
    List.iter
      (fun (name, outcome) ->
        match (outcome, List.assoc_opt name rep.Client.reports) with
        | Ok want, Some got ->
            Alcotest.(check string)
              (name ^ " byte-identical after the storm") want got
        | _ -> Alcotest.fail (name ^ ": missing report"))
      direct;
    let server = Result.get_ok (Client.stats c) in
    Alcotest.(check (option int)) "nothing left running" (Some 0)
      (stat_int server [ "queue"; "running" ]);
    Alcotest.(check (option int)) "queue empty" (Some 0)
      (stat_int server [ "queue"; "depth" ]);
    Client.close c;
    teardown ()
  in
  (QCheck_alcotest.to_alcotest test, final)

(* ---------- CLI exit-code contract for the serve path ---------- *)

let cli_path () =
  let candidates =
    [
      "../bin/tquad_cli.exe";
      "_build/default/bin/tquad_cli.exe";
      Filename.concat (Filename.dirname Sys.executable_name)
        "../bin/tquad_cli.exe";
    ]
  in
  match List.find_opt Sys.file_exists candidates with
  | Some p -> p
  | None -> Alcotest.fail "tquad_cli.exe not built"

let run_cli args =
  Sys.command (Printf.sprintf "%s %s >/dev/null 2>&1" (cli_path ()) args)

let test_cli_exit_codes () =
  let prog, bytes = Lazy.force fixture in
  let socket = tmp_socket () in
  let cfg = { (Server.default ~socket_path:socket) with Server.workers = 1 } in
  let th = start_server cfg in
  let c = Result.get_ok (Client.connect socket) in
  let id =
    Result.get_ok (Client.upload ~program:(Objfile.encode prog) ~trace:bytes c)
  in
  (* 0: healthy operations *)
  Alcotest.(check int) "ping: 0" 0
    (run_cli (Printf.sprintf "client ping --socket %s" socket));
  Alcotest.(check int) "replay+wait: 0" 0
    (run_cli
       (Printf.sprintf "client replay --socket %s %s --wait --tool gprof"
          socket id));
  Alcotest.(check int) "chaos storm: 0" 0
    (run_cli
       (Printf.sprintf "client chaos --socket %s --seed 7 --rounds 6" socket));
  (* 2: usage errors, client-side and server-refused alike *)
  Alcotest.(check int) "negative deadline: 2" 2
    (run_cli
       (Printf.sprintf "client replay --socket %s %s --deadline=-1" socket id));
  Alcotest.(check int) "negative retries: 2" 2
    (run_cli (Printf.sprintf "client ping --socket %s --retries=-1" socket));
  Alcotest.(check int) "unknown tool is the server's bad-request: 2" 2
    (run_cli
       (Printf.sprintf "client replay --socket %s %s --tool nosuch" socket id));
  (* 3: the analysis never ran *)
  Alcotest.(check int) "unreachable socket: 3" 3
    (run_cli "client ping --socket /nonexistent/tq.sock");
  Alcotest.(check int) "unknown job id: 3" 3
    (run_cli (Printf.sprintf "client report --socket %s 9999" socket));
  Alcotest.(check int) "unknown trace id: 3" 3
    (run_cli
       (Printf.sprintf "client replay --socket %s 0000000000000000" socket));
  (* 4: the job ran and was killed by its deadline *)
  Alcotest.(check int) "deadline-killed job: 4" 4
    (run_cli
       (Printf.sprintf "client replay --socket %s %s --wait --deadline 1e-9"
          socket id));
  Client.close c;
  stop_server socket th

let qcheck_storm_test, qcheck_storm_final = qcheck_wire_storm_never_kills_server

let suites =
  [ ( "chaos",
      [ Alcotest.test_case "frames: max_frame boundary exact/below/above"
          `Quick test_frame_boundary_exact;
        Alcotest.test_case "frames: negative lengths refused" `Quick
          test_frame_negative_length;
        Alcotest.test_case "frames: garbage payloads refused" `Quick
          test_frame_garbage_payload;
        Alcotest.test_case "frames: every truncation point is typed" `Quick
          test_frame_truncation_matrix;
        Alcotest.test_case "frames: oversized writes refused" `Quick
          test_write_oversized_refused;
        Alcotest.test_case "deadlines: idle timeout fires" `Quick
          test_idle_timeout_fires;
        Alcotest.test_case "deadlines: slow-loris frame timeout fires" `Quick
          test_frame_timeout_fires_after_first_byte;
        Alcotest.test_case "deadlines: dribbled-but-live frames complete"
          `Quick test_dribbled_frame_completes;
        Alcotest.test_case "deadlines: stuffed-pipe writes time out" `Quick
          test_write_timeout_on_stuffed_pipe;
        Alcotest.test_case "jobs: cancellation is typed and accounted" `Quick
          test_jobs_cancel_queued;
        Alcotest.test_case "jobs: deadline kills typed, slot freed" `Quick
          test_jobs_deadline_exceeded;
        Alcotest.test_case "jobs: pool default deadline applies" `Quick
          test_jobs_default_deadline;
        Alcotest.test_case "retry: backoff floors at the server hint" `Quick
          test_retry_backoff_honours_hint;
        Alcotest.test_case "retry: exponential growth capped" `Quick
          test_retry_exponential_when_no_hint;
        Alcotest.test_case "retry: terminal kinds fail fast" `Quick
          test_retry_terminal_kinds_fail_fast;
        Alcotest.test_case "retry: jitter bounds" `Quick
          test_backoff_jitter_bounds;
        Alcotest.test_case "server: slow loris reaped with typed timeout"
          `Quick test_server_reaps_slow_loris;
        Alcotest.test_case "server: connection cap refuses typed busy" `Quick
          test_server_connection_cap;
        Alcotest.test_case "server: job deadline typed, slot freed" `Quick
          test_server_job_deadline_typed_and_slot_freed;
        Alcotest.test_case "server: attached jobs cancel on disconnect"
          `Quick test_server_attach_cancels_on_disconnect;
        Alcotest.test_case "server: retried requests reach the counter"
          `Quick test_cli_retry_reaches_server_counter;
        qcheck_storm_test;
        Alcotest.test_case "storm aftermath: byte-identical reports" `Quick
          qcheck_storm_final;
        Alcotest.test_case "cli: serve-path exit codes 0/2/3/4" `Quick
          test_cli_exit_codes ] ) ]
