(* v4 redundancy suppression: the compressed container must decode to the
   byte-identical event stream (and therefore byte-identical reports) while
   actually shrinking loop-dominated recordings.  These tests pin the whole
   contract: stream identity on wfs and on random MiniC programs, report
   identity through sequential / sharded / salvage replay, the wire format
   itself via a hand-assembled golden v4 fixture, and the reader's
   raw-vs-stored accounting. *)

module Event = Tq_trace.Event
module Writer = Tq_trace.Writer
module Reader = Tq_trace.Reader
module Squash = Tq_trace.Squash
module Replay = Tq_trace.Replay
module Probe = Tq_trace.Probe
module Machine = Tq_vm.Machine
module Engine = Tq_dbi.Engine
module Program = Tq_vm.Program

let read_all path = In_channel.with_open_bin path In_channel.input_all

let events_of r =
  let out = ref [] in
  Reader.iter r (fun ev -> out := ev :: !out);
  List.rev !out

(* Record one scenario twice — plain v3 and compressed v4 — and return
   both raw container images.  Fresh machines, same program: the event
   streams are deterministic, so any divergence is the compressor's. *)
let record_both scen =
  let record ~compress =
    let path = Filename.temp_file "tq_cmp" ".trc" in
    Fun.protect
      ~finally:(fun () -> Sys.remove path)
      (fun () ->
        let prog = Tq_wfs.Harness.compile scen in
        let m = Machine.create ~vfs:(Tq_wfs.Harness.make_vfs scen) prog in
        let eng = Engine.create m in
        let _n : int =
          Probe.record ~fuel:(Tq_wfs.Harness.fuel scen) ~compress eng ~path
        in
        (prog, read_all path))
  in
  let prog, plain = record ~compress:false in
  let _, compressed = record ~compress:true in
  (prog, plain, compressed)

let wfs_recording = lazy (record_both Tq_wfs.Scenario.tiny)

(* ---------- stream identity + compression ratio on wfs ---------- *)

let test_wfs_identity_and_ratio () =
  let _, plain, compressed = Lazy.force wfs_recording in
  let rp = Reader.of_string plain and rc = Reader.of_string compressed in
  Alcotest.(check int) "plain is v3" 3 (Reader.version rp);
  Alcotest.(check int) "compressed is v4" 4 (Reader.version rc);
  Alcotest.(check int) "same raw event count" (Reader.n_events rp)
    (Reader.n_events rc);
  Alcotest.(check bool) "decoded streams identical" true
    (events_of rp = events_of rc);
  Alcotest.(check bool) "repeat chunks present" true
    (Reader.repeat_chunks rc > 0);
  Alcotest.(check bool) "stored < raw" true
    (Reader.stored_events rc < Reader.n_events rc);
  Alcotest.(check int) "v3 stores everything" (Reader.n_events rp)
    (Reader.stored_events rp);
  let ratio =
    float_of_int (String.length plain) /. float_of_int (String.length compressed)
  in
  if ratio < 4.0 then
    Alcotest.failf "wfs compression ratio %.2fx < 4x (%d -> %d bytes)" ratio
      (String.length plain) (String.length compressed)

let test_reader_stats () =
  let _, _, compressed = Lazy.force wfs_recording in
  let r = Reader.of_string compressed in
  Alcotest.(check int) "plain + repeat + body = chunks"
    (Reader.n_chunks r)
    (Reader.plain_chunks r + Reader.repeat_chunks r + Reader.body_chunks r);
  Alcotest.(check bool) "body defs present" true (Reader.body_chunks r > 0);
  Alcotest.(check bool) "bodies interned: fewer defs than repeats" true
    (Reader.body_chunks r < Reader.repeat_chunks r);
  (* chunk_event_count must report raw (expanded) counts and sum to n_events *)
  let sum = ref 0 in
  for i = 0 to Reader.n_chunks r - 1 do
    let n = Reader.chunk_event_count r i in
    Alcotest.(check int)
      (Printf.sprintf "chunk %d decode matches index" i)
      n
      (Array.length (Reader.chunk_events r i));
    sum := !sum + n
  done;
  Alcotest.(check int) "index counts are raw" (Reader.n_events r) !sum;
  Alcotest.(check int) "crc_check covers every chunk" (Reader.n_chunks r)
    (Reader.crc_check r)

(* ---------- seek equivalence on the compressed container ---------- *)

let test_compressed_seek () =
  let _, plain, compressed = Lazy.force wfs_recording in
  let rp = Reader.of_string plain and rc = Reader.of_string compressed in
  let last = Reader.last_icount rp in
  List.iter
    (fun from_icount ->
      let tail r =
        let out = ref [] in
        Reader.iter ~from_icount r (fun ev -> out := ev :: !out);
        List.rev !out
      in
      Alcotest.(check bool)
        (Printf.sprintf "seek to %d agrees" from_icount)
        true
        (tail rp = tail rc))
    [ 0; 1; last / 3; last / 2; last - 1; last; last + 1 ]

(* ---------- report identity: live vs sequential vs sharded ----------

   The jobs, renderers and outcome comparator are [Test_trace]'s own — the
   exact full-state render functions the replay-equivalence tests use, so
   string equality here is full-tool-state equality. *)

let replay_jobs = Test_trace.sharded_jobs
let outcomes_equal = Test_trace.outcomes_equal

let test_report_identity () =
  let prog, plain, compressed = Lazy.force wfs_recording in
  let baseline = Replay.sequential (Reader.of_string plain) (replay_jobs prog) in
  List.iter (fun (name, o) ->
      if Result.is_error o then Alcotest.failf "baseline job %s failed" name)
    baseline;
  let check what outcomes =
    Alcotest.(check bool) (what ^ " reports byte-identical to v3") true
      (outcomes_equal baseline outcomes)
  in
  let rc () = Reader.of_string compressed in
  check "sequential" (Replay.sequential (rc ()) (replay_jobs prog));
  check "sharded x1"
    (Replay.parallel ~domains:1 ~shards:1 (rc ()) (replay_jobs prog));
  check "sharded x4"
    (Replay.parallel ~domains:2 ~shards:4 (rc ()) (replay_jobs prog))

(* ---------- round-trip property on arbitrary event streams ---------- *)

(* [Writer ~compress] must round-trip any event stream — including ones
   with no loop structure at all, adversarial key collisions, and streams
   that end mid-run (flush of an uncommitted or partially-matched run). *)
let qcheck_compress_roundtrip =
  QCheck.Test.make ~name:"compressed writer round-trips any event stream"
    ~count:120
    (QCheck.pair Test_trace.arb_events (QCheck.int_range 128 2048))
    (fun (evs, chunk_bytes) ->
      let path = Filename.temp_file "tq_cmp" ".trc" in
      Fun.protect
        ~finally:(fun () -> Sys.remove path)
        (fun () ->
          Writer.with_file ~chunk_bytes ~compress:true path (fun w ->
              List.iter (Writer.emit w) evs);
          let r = Reader.load path in
          Reader.version r = 4
          && events_of r = evs
          && Reader.n_events r = List.length evs))

(* A synthetic perfectly-affine loop must actually commit to repeat chunks
   and reach a high event-level ratio — guards against the suppressor
   silently degrading to pass-through. *)
let test_affine_loop_compresses () =
  let evs = ref [] in
  for i = 0 to 999 do
    let icount = i * 10 in
    evs :=
      Event.Ret { icount = icount + 3; sp = 4096 - (i * 16) }
      :: Event.Store
           { icount = icount + 2; static = 7; ea = 8192 + (i * 8); size = 8;
             sp = 4096 - (i * 16) }
      :: Event.Load
           { icount = icount + 1; static = 7; ea = 4096 + (i * 8); size = 8;
             sp = 4096 - (i * 16) }
      :: Event.Block_exec { icount; addr = 0x400; n = 10 }
      :: !evs
  done;
  let evs = List.rev !evs in
  let path = Filename.temp_file "tq_cmp" ".trc" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Writer.with_file ~compress:true path (fun w ->
          List.iter (Writer.emit w) evs);
      let plain = Filename.temp_file "tq_cmp" ".trc" in
      Fun.protect
        ~finally:(fun () -> Sys.remove plain)
        (fun () ->
          Writer.with_file plain (fun w -> List.iter (Writer.emit w) evs);
          let r = Reader.load path in
          Alcotest.(check bool) "stream survives" true (events_of r = evs);
          Alcotest.(check bool) "repeat chunks" true
            (Reader.repeat_chunks r > 0);
          let stored = Reader.stored_events r and raw = Reader.n_events r in
          if stored * 20 > raw then
            Alcotest.failf "affine loop barely compressed: %d stored of %d raw"
              stored raw;
          let ratio =
            float_of_int (Reader.byte_size (Reader.load plain))
            /. float_of_int (Reader.byte_size r)
          in
          if ratio < 10.0 then
            Alcotest.failf "affine loop ratio %.1fx < 10x" ratio))

(* ---------- random MiniC programs: compressed record = plain record ----- *)

let qcheck_minic_record_identity =
  QCheck.Test.make
    ~name:"record --compress = record on random MiniC programs" ~count:20
    (QCheck.make ~print:Fun.id Test_fuzz.gen_minic_valid)
    (fun src ->
      let prog =
        Tq_rt.Rt.link [ Tq_minic.Driver.compile_unit ~image:"gen" src ]
      in
      let record ~compress =
        let path = Filename.temp_file "tq_cmp" ".trc" in
        Fun.protect
          ~finally:(fun () -> Sys.remove path)
          (fun () ->
            let eng = Engine.create (Machine.create prog) in
            (* a generated program may exhaust the fuel budget — the probe
               still finalizes the container, and execution is deterministic,
               so both recordings truncate at the same event *)
            (try ignore (Probe.record ~fuel:200_000 ~compress eng ~path : int)
             with Tq_vm.Executor.Out_of_fuel _ -> ());
            read_all path)
      in
      let plain = record ~compress:false in
      let compressed = record ~compress:true in
      let rp = Reader.of_string plain and rc = Reader.of_string compressed in
      Reader.version rc = 4
      && events_of rp = events_of rc
      && String.length compressed <= String.length plain)

(* ---------- salvage of corrupted v4 containers ---------- *)

let qcheck_v4_salvage_identity =
  QCheck.Test.make
    ~name:"sharded = sequential under salvage of a corrupted v4 trace"
    ~count:25
    QCheck.(int_bound 100_000)
    (fun seed ->
      let prog, _, compressed = Lazy.force wfs_recording in
      let mutation = Tq_faultgen.Faultgen.random ~seed compressed in
      let mutated = Tq_faultgen.Faultgen.apply mutation compressed in
      match Reader.of_string ~mode:Reader.Salvage mutated with
      | exception Reader.Format_error _ -> (
          (* both paths must refuse identically *)
          match Reader.of_string ~mode:Reader.Salvage mutated with
          | exception Reader.Format_error _ -> true
          | _ -> false)
      | r1 ->
          let r2 = Reader.of_string ~mode:Reader.Salvage mutated in
          outcomes_equal
            (Replay.sequential r1 (replay_jobs prog))
            (Replay.parallel ~domains:2 ~shards:3 r2 (replay_jobs prog)))

(* Walk the chunk region with the self-delimiting headers and return the
   payload span (start, end) of the first chunk of [want]ed kind — the
   tests' own minimal scanner, so a mutation lands inside a real chunk and
   never accidentally in some lookalike payload byte. *)
let find_payload_span raw want =
  let pos = ref 15 (* header_bytes *) in
  let span = ref None in
  while !span = None do
    let kind = raw.[!pos] in
    incr pos;
    let _n = Tq_util.Leb128.read_u raw pos in
    let _fic = Tq_util.Leb128.read_u raw pos in
    let plen = Tq_util.Leb128.read_u raw pos in
    let pstart = !pos + 4 in
    if kind = want then span := Some (pstart, pstart + plen)
    else pos := pstart + plen
  done;
  Option.get !span

let flip_byte raw pos =
  let b = Bytes.of_string raw in
  Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor 0x40));
  Bytes.to_string b

(* Tearing a byte out of a repeat chunk must drop that chunk and resync on
   the next one — salvage keeps everything else. *)
let test_torn_repeat_chunk_salvage () =
  let _, _, compressed = Lazy.force wfs_recording in
  let r = Reader.of_string compressed in
  Alcotest.(check bool) "fixture has repeat chunks" true
    (Reader.repeat_chunks r > 0);
  (* corrupt the last payload byte (a field-table byte — the header fields
     stay structurally valid, only the CRC can catch it) *)
  let _, pend = find_payload_span compressed Writer.repeat_magic in
  let mutated = flip_byte compressed (pend - 1) in
  (match
     let r = Reader.of_string mutated in
     ignore (Reader.crc_check r : int)
   with
  | () -> Alcotest.fail "strict reader accepted a torn repeat chunk"
  | exception Reader.Format_error _ -> ());
  let s = Reader.of_string ~mode:Reader.Salvage mutated in
  let info =
    match Reader.salvage_info s with
    | Some i -> i
    | None -> Alcotest.fail "salvage reader has no scan info"
  in
  Alcotest.(check bool) "dropped at least one chunk" true
    (info.Reader.dropped_chunks >= 1);
  Alcotest.(check bool) "kept most chunks" true
    (info.Reader.salvaged_chunks >= Reader.n_chunks r - 2);
  Alcotest.(check bool) "salvaged events shrink" true
    (Reader.n_events s < Reader.n_events r)

(* Tearing a body-def chunk is worse than tearing a repeat: every repeat
   chunk referencing it becomes unexpandable.  Salvage must drop the def
   AND its dependents, never expand a repeat against wrong body bytes. *)
let test_torn_body_def_salvage () =
  let _, _, compressed = Lazy.force wfs_recording in
  let r = Reader.of_string compressed in
  Alcotest.(check bool) "fixture has body defs" true
    (Reader.body_chunks r > 0);
  (* corrupt a blob byte (past the leading body-length ULEB): the strict
     loader catches the reference/def CRC mismatch at load time *)
  let pstart, _ = find_payload_span compressed Writer.body_magic in
  let mutated = flip_byte compressed (pstart + 1) in
  (match Reader.of_string mutated with
  | _ -> Alcotest.fail "strict load accepted a torn body def"
  | exception Reader.Format_error _ -> ());
  let s = Reader.of_string ~mode:Reader.Salvage mutated in
  let info = Option.get (Reader.salvage_info s) in
  (* the def plus at least one dependent repeat are gone *)
  Alcotest.(check bool) "dropped def and dependents" true
    (info.Reader.dropped_chunks >= 2);
  Alcotest.(check bool) "salvaged events shrink" true
    (Reader.n_events s < Reader.n_events r);
  Alcotest.(check bool) "no dangling repeats survive: stream decodes" true
    (List.length (events_of s) = Reader.n_events s)

(* A flipped chunk-kind byte (plain <-> repeat) must fail the CRC — v4
   checksums cover the kind byte precisely so mislabeled chunks cannot
   decode as the wrong kind. *)
let test_kind_flip_detected () =
  let _, _, compressed = Lazy.force wfs_recording in
  let r = Reader.of_string compressed in
  let mutated =
    Tq_faultgen.Faultgen.apply
      (Tq_faultgen.Faultgen.Flip_kind { index = 0 })
      compressed
  in
  (match Reader.of_string mutated with
  | _ -> Alcotest.fail "strict load accepted a flipped chunk kind"
  | exception Reader.Format_error _ -> ());
  let s = Reader.of_string ~mode:Reader.Salvage mutated in
  Alcotest.(check bool) "salvage drops only the flipped chunk" true
    (Reader.n_chunks s >= Reader.n_chunks r - 1)

(* ---------- golden fixtures: the wire format is pinned ---------- *)

(* Hand-assemble a v4 container with one plain chunk, one body-def chunk
   and one repeat chunk referencing it, byte by byte, straight from
   docs/TRACE.md.  If this fixture stops decoding, the wire format changed
   — which is a compatibility break, not a refactor. *)
let build_v4_golden () =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "TQTRC4\n";
  Buffer.add_int64_le buf 0L (* fingerprint *);
  let chunks = ref [] in
  let add_chunk ~kind ~n ~first_icount payload =
    let off = Buffer.length buf in
    let meta = Buffer.create 16 in
    Tq_util.Leb128.write_u meta n;
    Tq_util.Leb128.write_u meta first_icount;
    Tq_util.Leb128.write_u meta (String.length payload);
    let meta = Buffer.contents meta in
    let crc = Tq_util.Crc32.digest (String.make 1 kind) in
    let crc = Tq_util.Crc32.digest ~crc meta in
    let crc = Tq_util.Crc32.digest ~crc payload in
    Buffer.add_char buf kind;
    Buffer.add_string buf meta;
    let b = Bytes.create 4 in
    Bytes.set_int32_le b 0 (Int32.of_int crc);
    Buffer.add_bytes buf b;
    Buffer.add_string buf payload;
    chunks := (off, first_icount, n) :: !chunks
  in
  (* plain chunk: two events *)
  let payload = Buffer.create 32 in
  let st = Event.fresh_state ~icount:100 () in
  Event.encode st payload (Event.Rtn_entry { icount = 100; routine = 1; sp = 4096 });
  Event.encode st payload (Event.Load { icount = 101; static = 1; ea = 64; size = 8; sp = 4096 });
  add_chunk ~kind:'\xA7' ~n:2 ~first_icount:100 (Buffer.contents payload);
  (* body-def chunk: the loop body [Load; Store] stored once, encoded
     relative to its own first icount (110), prefixed by its event count *)
  let body = Buffer.create 32 in
  Tq_util.Leb128.write_u body 2 (* body length B *);
  let st = Event.fresh_state ~icount:110 () in
  Event.encode st body (Event.Load { icount = 110; static = 2; ea = 200; size = 4; sp = 4096 });
  Event.encode st body (Event.Store { icount = 111; static = 2; ea = 999; size = 4; sp = 4096 });
  let body = Buffer.contents body in
  let def_off = Buffer.length buf in
  add_chunk ~kind:'\xA9' ~n:0 ~first_icount:110 body;
  (* repeat chunk: 3 iterations of the def's body.
     Loads at ea 200,208,216 (affine +8); stores at 999,1000,900 (literal).
     icounts advance by 10 per iteration; sp fixed (affine 0). *)
  let payload = Buffer.create 64 in
  Tq_util.Leb128.write_u payload 2 (* body length B *);
  Tq_util.Leb128.write_u payload 3 (* iters *);
  Tq_util.Leb128.write_u payload def_off (* bref: the def's file offset *);
  Tq_util.Leb128.write_u payload (Tq_util.Crc32.digest body) (* bcrc *);
  (* field tables, canonical order: Load.icount, Load.ea, Load.sp,
     Store.icount, Store.ea, Store.sp.  Mode bitmap first: 6 fields, one
     byte, bit 4 (Store.ea) set = literal. *)
  Buffer.add_uint8 payload 0b0001_0000;
  Tq_util.Leb128.write_s payload 10;  (* Load.icount +10 *)
  Tq_util.Leb128.write_s payload 8;   (* Load.ea +8 *)
  Tq_util.Leb128.write_s payload 0;   (* Load.sp +0 *)
  Tq_util.Leb128.write_s payload 10;  (* Store.icount +10 *)
  Tq_util.Leb128.write_s payload 1; Tq_util.Leb128.write_s payload (-100);
                                      (* Store.ea literal: +1, -100 *)
  Tq_util.Leb128.write_s payload 0;   (* Store.sp +0 *)
  add_chunk ~kind:'\xA8' ~n:6 ~first_icount:110 (Buffer.contents payload);
  (* index + trailer *)
  let chunks = List.rev !chunks in
  let index_offset = Buffer.length buf in
  Tq_util.Leb128.write_u buf (List.length chunks);
  let prev_off = ref 0 and prev_ic = ref 0 in
  List.iter
    (fun (off, ic, n) ->
      Tq_util.Leb128.write_u buf (off - !prev_off);
      Tq_util.Leb128.write_u buf (ic - !prev_ic);
      Tq_util.Leb128.write_u buf n;
      prev_off := off;
      prev_ic := ic)
    chunks;
  Buffer.add_int64_le buf (Int64.of_int index_offset);
  Buffer.add_string buf "TQTRIX1\n";
  Buffer.contents buf

let test_v4_golden_fixture () =
  let raw = build_v4_golden () in
  let r = Reader.of_string raw in
  Alcotest.(check int) "version" 4 (Reader.version r);
  Alcotest.(check int) "n_events (raw)" 8 (Reader.n_events r);
  Alcotest.(check int) "stored events" 4 (Reader.stored_events r);
  Alcotest.(check int) "plain chunks" 1 (Reader.plain_chunks r);
  Alcotest.(check int) "body-def chunks" 1 (Reader.body_chunks r);
  Alcotest.(check int) "repeat chunks" 1 (Reader.repeat_chunks r);
  let expect =
    [
      Event.Rtn_entry { icount = 100; routine = 1; sp = 4096 };
      Event.Load { icount = 101; static = 1; ea = 64; size = 8; sp = 4096 };
      Event.Load { icount = 110; static = 2; ea = 200; size = 4; sp = 4096 };
      Event.Store { icount = 111; static = 2; ea = 999; size = 4; sp = 4096 };
      Event.Load { icount = 120; static = 2; ea = 208; size = 4; sp = 4096 };
      Event.Store { icount = 121; static = 2; ea = 1000; size = 4; sp = 4096 };
      Event.Load { icount = 130; static = 2; ea = 216; size = 4; sp = 4096 };
      Event.Store { icount = 131; static = 2; ea = 900; size = 4; sp = 4096 };
    ]
  in
  Alcotest.(check bool) "golden stream decodes exactly" true
    (events_of r = expect);
  (* the def decodes to nothing of its own; the repeat decodes in
     isolation (chunk cache path) by resolving it *)
  Alcotest.(check int) "body def decodes to no events" 0
    (Array.length (Reader.chunk_events r 1));
  Alcotest.(check int) "repeat chunk decodes standalone" 6
    (Array.length (Reader.chunk_events r 2));
  (* and salvage of the same image finds all three chunks *)
  let s = Reader.of_string ~mode:Reader.Salvage raw in
  Alcotest.(check int) "salvage keeps all chunks" 3 (Reader.n_chunks s);
  Alcotest.(check bool) "salvage stream identical" true (events_of s = expect)

(* The v4 writer's own output for a fixed stream is pinned byte-for-byte
   against the same hand-assembly — writer drift breaks old readers. *)
let test_v4_writer_matches_golden () =
  (* feed the writer the exact stream the golden fixture encodes; force the
     repeat record through emit_repeat-equivalent squash output by using a
     Squash instance directly *)
  let w_chunks = ref [] in
  let out =
    {
      Squash.out_plain = (fun ev -> w_chunks := `P ev :: !w_chunks);
      Squash.out_repeat =
        (fun ~body ~iters ~fields ->
          w_chunks := `R (body, iters, fields) :: !w_chunks);
    }
  in
  let sq = Squash.create ~min_iters:2 ~min_raw:4 out in
  (* 3 iterations of [Block_exec; Load] with affine ea *)
  for i = 0 to 2 do
    Squash.feed_boundary sq ~key:42
      (Event.Block_exec { icount = i * 10; addr = 0x40; n = 5 });
    Squash.feed sq
      (Event.Load
         { icount = (i * 10) + 1; static = 3; ea = 100 + (i * 8); size = 4;
           sp = 256 })
  done;
  Squash.flush sq;
  let repeats =
    List.filter_map
      (function `R (b, i, f) -> Some (b, i, f) | `P _ -> None)
      !w_chunks
  in
  match repeats with
  | [ (body, iters, fields) ] ->
      Alcotest.(check int) "body length" 2 (Array.length body);
      Alcotest.(check int) "iterations" 3 iters;
      (* fields: Block_exec.icount, Load.icount, Load.ea, Load.sp *)
      Alcotest.(check int) "field count" 4 (Array.length fields);
      Alcotest.(check bool) "all affine" true
        (Array.for_all (function Squash.Affine _ -> true | _ -> false) fields);
      (match fields.(2) with
      | Squash.Affine s -> Alcotest.(check int) "ea stride" 8 s
      | _ -> Alcotest.fail "ea field not affine")
  | l -> Alcotest.failf "expected exactly one repeat record, got %d" (List.length l)

let suites =
  [
    ( "compress",
      [
        Alcotest.test_case "wfs: stream identity + >=4x ratio" `Quick
          test_wfs_identity_and_ratio;
        Alcotest.test_case "reader raw/stored accounting" `Quick
          test_reader_stats;
        Alcotest.test_case "seek agrees with uncompressed" `Quick
          test_compressed_seek;
        Alcotest.test_case "reports byte-identical (seq + sharded)" `Quick
          test_report_identity;
        QCheck_alcotest.to_alcotest qcheck_compress_roundtrip;
        Alcotest.test_case "affine loop commits repeat chunks" `Quick
          test_affine_loop_compresses;
        QCheck_alcotest.to_alcotest qcheck_minic_record_identity;
        QCheck_alcotest.to_alcotest qcheck_v4_salvage_identity;
        Alcotest.test_case "torn repeat chunk: salvage resyncs" `Quick
          test_torn_repeat_chunk_salvage;
        Alcotest.test_case "torn body def: salvage drops dependents" `Quick
          test_torn_body_def_salvage;
        Alcotest.test_case "flipped chunk kind fails CRC" `Quick
          test_kind_flip_detected;
        Alcotest.test_case "golden v4 fixture decodes" `Quick
          test_v4_golden_fixture;
        Alcotest.test_case "squash emits expected repeat record" `Quick
          test_v4_writer_matches_golden;
      ] );
  ]
