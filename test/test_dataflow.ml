(* The dataflow layer of the static checker: symbolic trip counts,
   stride-classified access patterns, the dataflow-only diagnostics, the
   parametric bandwidth model, and the CLI exit-code contract.

   The differential property is the load-bearing one: for randomized
   constant-bound MiniC loop nests, every statically classified access is
   checked against the effective addresses the instrumented engine actually
   observes, and every constant trip count against the dynamic header
   execution count. *)

open Tq_vm
module Isa = Tq_isa.Isa
module Engine = Tq_dbi.Engine
module Sc = Tq_staticcheck.Staticcheck
module Cfg = Tq_staticcheck.Cfg
module Rcode = Tq_staticcheck.Rcode
module Dataflow = Tq_staticcheck.Dataflow
module Loopinfo = Tq_staticcheck.Loopinfo
module Access = Tq_staticcheck.Access
module Estimate = Tq_staticcheck.Estimate

let compile src = Tq_rt.Rt.link [ Tq_minic.Driver.compile_unit ~image:"app" src ]

let rep_of prog name =
  let r = Option.get (Symtab.by_name prog.Program.symtab name) in
  let cfg = Cfg.build (Rcode.of_routine prog r) in
  let li, rep = Access.analyze cfg in
  (r, li, rep)

let loops_by_addr (rep : Access.routine) =
  List.sort
    (fun (a : Access.loop_report) b -> compare a.Access.lr_head_addr b.Access.lr_head_addr)
    rep.Access.loops

(* ---------- trip counts ---------- *)

let test_trip_const () =
  let prog =
    compile
      "int buf[64];\n\
       int kern() { int s; s = 0; for (int i = 0; i < 40; i = i + 3) s = s + \
       buf[i]; return s; }\n\
       int main() { return kern(); }\n"
  in
  let _, _, rep = rep_of prog "kern" in
  match loops_by_addr rep with
  | [ l ] ->
      Alcotest.(check string)
        "ceil(40/3) trips" "14"
        (Loopinfo.trip_to_string l.Access.lr_trip)
  | ls -> Alcotest.failf "expected 1 loop, got %d" (List.length ls)

let test_trip_affine () =
  let prog =
    compile
      "int buf[64];\n\
       int kern(int n) { for (int i = 0; i < n; i = i + 1) buf[i] = i; return \
       0; }\n\
       int main() { return kern(17); }\n"
  in
  let _, _, rep = rep_of prog "kern" in
  match loops_by_addr rep with
  | [ l ] -> (
      match l.Access.lr_trip with
      | Loopinfo.Taffine { num = 1; den = 1; off = 0; _ } -> ()
      | t ->
          Alcotest.failf "expected affine trips in the parameter, got %s"
            (Loopinfo.trip_to_string t))
  | ls -> Alcotest.failf "expected 1 loop, got %d" (List.length ls)

let test_trip_nested_and_calls () =
  (* in-loop calls — one of them conditional — must not destroy the
     induction variable: the sp save/restore around each call-argument
     area joins across the cycle (the wfs main-chunk-loop shape) *)
  let prog =
    compile
      "int out[32]; int tr_slot;\n\
       int helper(int x) { tr_slot = x + 1; return 0; }\n\
       int kern() {\n\
      \  for (int i = 0; i < 8; i = i + 1) {\n\
      \    helper(i);\n\
      \    if (i % 2 == 0 && i <= 4) helper(i / 2);\n\
      \    for (int j = 0; j < 4; j = j + 1) out[i * 4 + j] = tr_slot;\n\
      \  }\n\
      \  return out[0]; }\n\
       int main() { return kern(); }\n"
  in
  let _, _, rep = rep_of prog "kern" in
  match loops_by_addr rep with
  | [ outer; inner ] ->
      Alcotest.(check string)
        "outer trips" "8"
        (Loopinfo.trip_to_string outer.Access.lr_trip);
      Alcotest.(check string)
        "inner trips" "4"
        (Loopinfo.trip_to_string inner.Access.lr_trip)
  | ls -> Alcotest.failf "expected 2 loops, got %d" (List.length ls)

let test_trip_unknown_geometric () =
  let prog =
    compile
      "int kern(int n) { int x; x = 1; while (x < n) x = x * 2; return x; }\n\
       int main() { return kern(100); }\n"
  in
  let _, _, rep = rep_of prog "kern" in
  match loops_by_addr rep with
  | [ l ] -> (
      match l.Access.lr_trip with
      | Loopinfo.Tunknown _ -> ()
      | t ->
          Alcotest.failf "geometric loop should be unknown, got %s"
            (Loopinfo.trip_to_string t))
  | ls -> Alcotest.failf "expected 1 loop, got %d" (List.length ls)

(* ---------- access patterns ---------- *)

let patterns_of prog name =
  let _, _, rep = rep_of prog name in
  List.filter_map
    (fun (a : Access.acc) ->
      if a.Access.loop <> None then Some (a.Access.is_store, a.Access.pattern)
      else None)
    rep.Access.accesses

let test_patterns () =
  let prog =
    compile
      "int a[128]; int b[128]; int idx[128]; int g;\n\
       int kern() { int s; s = 0;\n\
      \  for (int i = 0; i < 64; i = i + 1) {\n\
      \    a[i] = s;            \n\
      \    b[2 * i] = i;        \n\
      \    s = s + a[idx[i]];   \n\
      \    s = s + g;           \n\
      \  }\n\
      \  return s; }\n\
       int main() { return kern(); }\n"
  in
  let pats = patterns_of prog "kern" in
  Alcotest.(check bool) "has sequential store" true
    (List.mem (true, Access.Sequential) pats);
  Alcotest.(check bool) "has 16-byte strided store" true
    (List.mem (true, Access.Strided 16) pats);
  Alcotest.(check bool) "has indirect load" true
    (List.mem (false, Access.Indirect) pats);
  Alcotest.(check int) "nothing unclassified" 0
    (List.length
       (List.filter
          (fun (_, q) -> match q with Access.Unknown _ -> true | _ -> false)
          pats))

(* ---------- dataflow diagnostics ---------- *)

let diag_classes src =
  Sc.check_program ~dataflow:true (compile src)

let test_diag_uninit () =
  let ds = diag_classes "int main() { int x; return x; }\n" in
  Alcotest.(check bool) "uninit-local fires" true (Sc.has_class Sc.Uninit_local ds)

let test_diag_dead_store () =
  let ds =
    diag_classes "int main() { int x; x = 5; x = 6; return x; }\n"
  in
  Alcotest.(check bool) "dead-store fires" true (Sc.has_class Sc.Dead_store ds)

let test_diag_invariant_load () =
  let ds =
    diag_classes
      "int g;\n\
       int main() { int s; s = 0; for (int i = 0; i < 8; i = i + 1) s = s + \
       g; return s; }\n"
  in
  Alcotest.(check bool) "invariant-load fires" true
    (Sc.has_class Sc.Invariant_load ds)

let test_diag_clean_stays_clean () =
  (* turning the dataflow layer on must not invent errors or warnings for
     the clean case-study program *)
  let prog = Tq_wfs.Harness.compile Tq_wfs.Scenario.tiny in
  let non_info ds =
    List.length
      (List.filter (fun d -> Sc.severity_of d.Sc.cls <> Sc.Info) ds)
  in
  Alcotest.(check int) "default check clean" 0
    (non_info (Sc.check_program prog));
  Alcotest.(check int) "dataflow check clean" 0
    (non_info (Sc.check_program ~dataflow:true prog))

(* ---------- parametric estimator ---------- *)

let test_estimator_ranks_big_loop () =
  let prog =
    compile
      "int big[4096];\n\
       int kern() { int s; s = 0; for (int i = 0; i < 4096; i = i + 1) s = s \
       + big[i]; return s; }\n\
       int straight() { return big[0] + big[1] + big[2]; }\n\
       int main() { return kern() + straight(); }\n"
  in
  let find rows n =
    List.find (fun (r : Estimate.row) -> r.Estimate.routine.Symtab.name = n) rows
  in
  List.iter
    (fun mode ->
      let rows = Estimate.per_kernel ~mode prog in
      let k = find rows "kern" and s = find rows "straight" in
      Alcotest.(check bool)
        "kern outweighs straight" true
        (Estimate.bytes k > Estimate.bytes s))
    [ Estimate.Heuristic; Estimate.Dataflow ];
  (* dataflow mode knows the real trip count: 4096 iterations of a loop
     reading 8 bytes dominates, far beyond the heuristic weight *)
  let rows = Estimate.per_kernel ~mode:Estimate.Dataflow prog in
  let k = find rows "kern" in
  Alcotest.(check bool) "trip-weighted bytes >= 4096*8" true
    (Estimate.bytes k >= 4096. *. 8.);
  Alcotest.(check int) "trips resolved" 1 k.Estimate.trips_known

(* ---------- CLI exit-code contract ---------- *)

let cli_path () =
  let candidates =
    [
      "../bin/tquad_cli.exe";
      "_build/default/bin/tquad_cli.exe";
      Filename.concat (Filename.dirname Sys.executable_name) "../bin/tquad_cli.exe";
    ]
  in
  match List.find_opt Sys.file_exists candidates with
  | Some p -> p
  | None -> Alcotest.fail "tquad_cli.exe not built"

let write_tmp ext content =
  let path = Filename.temp_file "tq_dataflow" ext in
  let oc = open_out path in
  output_string oc content;
  close_out oc;
  path

let run_cli args =
  Sys.command (Printf.sprintf "%s %s >/dev/null 2>&1" (cli_path ()) args)

let test_exit_codes () =
  let clean = write_tmp ".mc" "int main() { return 0; }\n" in
  let diag =
    write_tmp ".mc" "int g[4];\nint main() { int x; return g[9] + x; }\n"
  in
  let garbage = write_tmp ".mc" "int main( {\n" in
  Alcotest.(check int) "clean program: 0" 0
    (run_cli (Printf.sprintf "check %s" clean));
  Alcotest.(check int) "unknown flag: 2" 2
    (run_cli (Printf.sprintf "check --no-such-flag %s" clean));
  Alcotest.(check int) "--json with --bandwidth: 2" 2
    (run_cli (Printf.sprintf "check --json --bandwidth %s" clean));
  Alcotest.(check int) "missing file: 3" 3
    (run_cli "check /nonexistent/input.mc");
  Alcotest.(check int) "unparseable source: 3" 3
    (run_cli (Printf.sprintf "check %s" garbage));
  Alcotest.(check int) "diagnostics: 4" 4
    (run_cli (Printf.sprintf "check --dataflow %s" diag));
  List.iter Sys.remove [ clean; diag; garbage ]

let test_json_manifest () =
  let clean =
    write_tmp ".mc"
      "int buf[64];\n\
       int main() { for (int i = 0; i < 64; i = i + 1) buf[i] = i; return 0; \
       }\n"
  in
  let out = Filename.temp_file "tq_dataflow" ".json" in
  let rc =
    Sys.command
      (Printf.sprintf "%s check --dataflow --json %s > %s 2>/dev/null"
         (cli_path ()) clean out)
  in
  Alcotest.(check int) "clean --json exits 0" 0 rc;
  let ic = open_in_bin out in
  let raw = really_input_string ic (in_channel_length ic) in
  close_in ic;
  let doc = Tq_obs.Json.of_string raw in
  (match Tq_obs.Manifest.validate doc with
  | Ok () -> ()
  | Error e -> Alcotest.failf "manifest invalid: %s" e);
  let check = Option.get (Tq_obs.Json.member "check" doc) in
  Alcotest.(check bool) "dataflow flag set" true
    (Tq_obs.Json.member "dataflow" check = Some (Tq_obs.Json.Int 1));
  (match Tq_obs.Json.member "loops" check with
  | Some loops ->
      Alcotest.(check bool) "one const loop" true
        (Tq_obs.Json.member "const" loops = Some (Tq_obs.Json.Int 1))
  | None -> Alcotest.fail "no loops object");
  List.iter Sys.remove [ clean; out ]

(* ---------- differential: static model vs instrumented execution -------- *)

(* Observe one run: per-address execution counts and, for memory
   instructions, the effective addresses in execution order. *)
let observe prog =
  let m = Machine.create prog in
  let eng = Engine.create m in
  let counts : (int, int) Hashtbl.t = Hashtbl.create 256 in
  let eas : (int, int list) Hashtbl.t = Hashtbl.create 256 in
  Engine.add_ins_instrumenter eng (fun v ->
      let a = Engine.Ins_view.addr v in
      let ins = Engine.Ins_view.ins v in
      let bump () =
        Hashtbl.replace counts a
          (1 + Option.value ~default:0 (Hashtbl.find_opt counts a))
      in
      if Isa.mem_read_bytes ins + Isa.mem_write_bytes ins > 0 then
        let ea () =
          if Isa.mem_write_bytes ins > 0 then Machine.write_ea m ins
          else Machine.read_ea m ins
        in
        [
          bump;
          (fun () ->
            Hashtbl.replace eas a
              (ea () :: Option.value ~default:[] (Hashtbl.find_opt eas a)));
        ]
      else [ bump ]);
  Engine.run ~fuel:10_000_000 eng;
  let count a = Option.value ~default:0 (Hashtbl.find_opt counts a) in
  let ea_trace a =
    List.rev (Option.value ~default:[] (Hashtbl.find_opt eas a))
  in
  (count, ea_trace)

let deltas = function
  | [] | [ _ ] -> []
  | x :: rest -> List.rev (fst (List.fold_left
      (fun (acc, prev) y -> ((y - prev) :: acc, y)) ([], x) rest))

let gen_params =
  QCheck.Gen.(
    map
      (fun ((n, step), (k, c, m)) -> (n, step, k, c, m))
      (pair
         (pair (int_range 0 12) (int_range 1 3))
         (triple (int_range 0 3) (int_range 0 4) (int_range 1 8))))

let src_of (n, step, k, c, m) =
  Printf.sprintf
    "int buf[512]; int out[512];\n\
     int kern() { int s; s = 0;\n\
    \  for (int i = 0; i < %d; i = i + %d) buf[%d * i + %d] = i;\n\
    \  for (int i = 0; i < %d; i = i + 1) { s = s + buf[i]; out[i] = s; }\n\
    \  return s; }\n\
     int main() { return kern(); }\n"
    n step k c m

let expected_trips1 (n, step, _, _, _) = (n + step - 1) / step

(* per-iteration byte advance a pattern promises; None = no promise *)
let promised_delta width = function
  | Access.Scalar -> Some 0
  | Access.Sequential -> Some width
  | Access.Strided k -> Some k
  | Access.Indirect | Access.Unknown _ -> None

let qcheck_static_vs_dynamic =
  QCheck.Test.make ~count:20 ~name:"static trips and strides match execution"
    (QCheck.make
       ~print:(fun (n, s, k, c, m) ->
         Printf.sprintf "N=%d STEP=%d K=%d C=%d M=%d" n s k c m)
       gen_params)
    (fun params ->
      let _, step, k, _, m = params in
      let prog = compile (src_of params) in
      let _, _, rep = rep_of prog "kern" in
      let count, ea_trace = observe prog in
      (match loops_by_addr rep with
      | [ l1; l2 ] ->
          (* constant trip counts, exactly *)
          let trips lr =
            match lr.Access.lr_trip with
            | Loopinfo.Tconst t -> t
            | t ->
                QCheck.Test.fail_reportf "non-constant trips: %s"
                  (Loopinfo.trip_to_string t)
          in
          let t1 = trips l1 and t2 = trips l2 in
          if t1 <> expected_trips1 params then
            QCheck.Test.fail_reportf "loop1 trips %d, expected %d" t1
              (expected_trips1 params);
          if t2 <> m then
            QCheck.Test.fail_reportf "loop2 trips %d, expected %d" t2 m;
          (* the header of a counted loop runs trips+1 times *)
          List.iter
            (fun (lr, t) ->
              let h = Option.get lr.Access.lr_head_addr in
              if count h <> t + 1 then
                QCheck.Test.fail_reportf
                  "header 0x%x executed %d times, trips %d" h (count h) t)
            [ (l1, t1); (l2, t2) ];
          (* the first store of loop1 is the generated strided one *)
          let in_loop1 =
            List.filter (fun (a : Access.acc) -> a.Access.loop <> None) rep.Access.accesses
            |> List.filter (fun (a : Access.acc) ->
                   match a.Access.addr with
                   | Some ad ->
                       ad >= Option.get l1.Access.lr_head_addr
                       && (ad < Option.get l2.Access.lr_head_addr)
                   | None -> false)
          in
          let buf_store =
            List.filter (fun (a : Access.acc) -> a.Access.is_store) in_loop1
            |> List.sort (fun (a : Access.acc) b -> compare a.Access.addr b.Access.addr)
            |> List.hd
          in
          let expect =
            if k = 0 then Access.Scalar
            else if k * step = 1 then Access.Sequential
            else Access.Strided (8 * k * step)
          in
          if buf_store.Access.pattern <> expect then
            QCheck.Test.fail_reportf "buf store classified %s, expected %s"
              (Access.pattern_to_string buf_store.Access.pattern)
              (Access.pattern_to_string expect);
          (* every classified in-loop access keeps its address promise *)
          List.iter
            (fun (a : Access.acc) ->
              match
                (a.Access.addr, promised_delta a.Access.width a.Access.pattern)
              with
              | Some ad, Some d ->
                  List.iter
                    (fun got ->
                      if got <> d then
                        QCheck.Test.fail_reportf
                          "access 0x%x (%s): observed delta %d, promised %d"
                          ad
                          (Access.pattern_to_string a.Access.pattern)
                          got d)
                    (deltas (ea_trace ad))
              | _ -> ())
            (List.filter (fun (a : Access.acc) -> a.Access.loop <> None)
               rep.Access.accesses);
          (* nothing in a constant-bound nest may stay unclassified *)
          List.iter
            (fun (a : Access.acc) ->
              match a.Access.pattern with
              | Access.Unknown why when a.Access.loop <> None ->
                  QCheck.Test.fail_reportf "unclassified in-loop access: %s" why
              | _ -> ())
            rep.Access.accesses
      | ls -> QCheck.Test.fail_reportf "expected 2 loops, got %d" (List.length ls));
      true)

let suites =
  [
    ( "dataflow",
      [
        Alcotest.test_case "trips: constant bound, non-unit step" `Quick
          test_trip_const;
        Alcotest.test_case "trips: affine in a parameter" `Quick
          test_trip_affine;
        Alcotest.test_case "trips: nested loop with in-loop calls" `Quick
          test_trip_nested_and_calls;
        Alcotest.test_case "trips: geometric loop stays unknown" `Quick
          test_trip_unknown_geometric;
        Alcotest.test_case "patterns: sequential/strided/indirect" `Quick
          test_patterns;
        Alcotest.test_case "diagnostic: uninit local" `Quick test_diag_uninit;
        Alcotest.test_case "diagnostic: dead store" `Quick test_diag_dead_store;
        Alcotest.test_case "diagnostic: invariant load" `Quick
          test_diag_invariant_load;
        Alcotest.test_case "dataflow adds no errors to wfs" `Quick
          test_diag_clean_stays_clean;
        Alcotest.test_case "estimator: trip-weighted ranking" `Quick
          test_estimator_ranks_big_loop;
        Alcotest.test_case "CLI exit-code contract (0/2/3/4)" `Quick
          test_exit_codes;
        Alcotest.test_case "CLI --json manifest validates" `Quick
          test_json_manifest;
        QCheck_alcotest.to_alcotest qcheck_static_vs_dynamic;
      ] );
  ]
