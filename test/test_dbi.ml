open Tq_isa
open Tq_vm
open Tq_asm
open Tq_dbi

(* A program with a loop doing loads and stores, plus a helper routine, used
   by most engine tests:

     _start: calls touch(3 times) in a loop, then exits.
     touch:  one 8-byte load + one 8-byte store on "buf".  *)

let loop_iters = 3

let program () =
  Link.link
    [
      {
        Link.uname = "main";
        main_image = true;
        data = [ { Link.dname = "buf"; init = Zero 64 } ];
        routines =
          [
            {
              Link.rname = "_start";
              body =
                (let b = Builder.create () in
                 Builder.ins b (Isa.Li (24, loop_iters));
                 let loop = Builder.fresh_label b in
                 let done_ = Builder.fresh_label b in
                 Builder.place b loop;
                 Builder.bz b 24 done_;
                 Builder.call b "touch";
                 Builder.ins b (Isa.Bin (Isa.Sub, 24, 24, Isa.Imm 1));
                 Builder.jmp b loop;
                 Builder.place b done_;
                 Builder.ins b (Isa.Li (Isa.reg_a0, 0));
                 Builder.ins b (Isa.Syscall Sysno.exit);
                 b);
            };
            {
              Link.rname = "touch";
              body =
                (let b = Builder.create () in
                 Builder.la b 20 "buf";
                 Builder.ins b
                   (Isa.Load
                      { width = Isa.W8; dst = 10; base = 20; off = 0; pred = None });
                 Builder.ins b (Isa.Bin (Isa.Add, 10, 10, Isa.Imm 1));
                 Builder.ins b
                   (Isa.Store
                      { width = Isa.W8; src = 10; base = 20; off = 0; pred = None });
                 Builder.ins b Isa.Ret;
                 b);
            };
          ];
      };
    ]

let test_instruction_counting () =
  let m = Machine.create (program ()) in
  let eng = Engine.create m in
  let counted = ref 0 in
  Engine.add_ins_instrumenter eng (fun _v -> [ (fun () -> incr counted) ]);
  Engine.run eng;
  Alcotest.(check bool) "halted" true (Machine.halted m);
  Alcotest.(check int) "analysis fired once per retired instruction"
    (Machine.instr_count m) !counted

let test_load_store_counting () =
  let m = Machine.create (program ()) in
  let eng = Engine.create m in
  let loads = ref 0 and stores = ref 0 and load_bytes = ref 0 in
  Engine.add_ins_instrumenter eng (fun v ->
      let i = Engine.Ins_view.ins v in
      let acc = ref [] in
      if Isa.reads_memory i && not (Isa.is_prefetch i) then begin
        let n = Isa.mem_read_bytes i in
        acc :=
          (fun () ->
            incr loads;
            load_bytes := !load_bytes + n)
          :: !acc
      end;
      if Isa.writes_memory i then acc := (fun () -> incr stores) :: !acc;
      !acc);
  Engine.run eng;
  (* per iteration: call (store) + explicit load + explicit store + ret (load).
     _start itself performs loop_iters calls; no other memory traffic. *)
  Alcotest.(check int) "loads = explicit + rets" (2 * loop_iters) !loads;
  Alcotest.(check int) "stores = explicit + calls" (2 * loop_iters) !stores;
  Alcotest.(check int) "load bytes" (16 * loop_iters) !load_bytes

let test_effective_addresses () =
  let prog = program () in
  let m = Machine.create prog in
  let eng = Engine.create m in
  (* "buf" is the first (only) datum, so it lands exactly at data_base. *)
  let buf_addr = Layout.data_base in
  let seen_global_reads = ref [] in
  Engine.add_ins_instrumenter eng (fun v ->
      let i = Engine.Ins_view.ins v in
      match i with
      | Isa.Load _ ->
          [
            (fun () ->
              seen_global_reads := Machine.read_ea m i :: !seen_global_reads);
          ]
      | _ -> []);
  Engine.run eng;
  Alcotest.(check int) "one global load per iter" loop_iters
    (List.length !seen_global_reads);
  List.iter
    (fun ea -> Alcotest.(check int) "ea = buf" buf_addr ea)
    !seen_global_reads

let test_rtn_instrumenter () =
  let m = Machine.create (program ()) in
  let eng = Engine.create m in
  let entries = Hashtbl.create 4 in
  Engine.add_rtn_instrumenter eng (fun r ->
      let name = r.Symtab.name in
      [
        (fun () ->
          Hashtbl.replace entries name
            (1 + Option.value ~default:0 (Hashtbl.find_opt entries name)));
      ]);
  Engine.run eng;
  Alcotest.(check (option int)) "_start entered once" (Some 1)
    (Hashtbl.find_opt entries "_start");
  Alcotest.(check (option int)) "touch entered per loop" (Some loop_iters)
    (Hashtbl.find_opt entries "touch")

let test_predicated_analysis () =
  let prog =
    Link.link
      [
        {
          Link.uname = "main";
          main_image = true;
          data = [ { Link.dname = "buf"; init = Zero 16 } ];
          routines =
            [
              {
                Link.rname = "_start";
                body =
                  (let b = Builder.create () in
                   Builder.la b 20 "buf";
                   Builder.ins b (Isa.Li (11, 0));
                   Builder.ins b (Isa.Li (12, 1));
                   Builder.ins b (Isa.Li (10, 5));
                   Builder.ins b
                     (Isa.Store
                        { width = Isa.W8; src = 10; base = 20; off = 0; pred = Some 11 });
                   Builder.ins b
                     (Isa.Store
                        { width = Isa.W8; src = 10; base = 20; off = 8; pred = Some 12 });
                   Builder.ins b (Isa.Li (Isa.reg_a0, 0));
                   Builder.ins b (Isa.Syscall Sysno.exit);
                   b);
              };
            ];
        };
      ]
  in
  let m = Machine.create prog in
  let eng = Engine.create m in
  let fired = ref 0 in
  Engine.add_ins_instrumenter eng (fun v ->
      match Engine.Ins_view.ins v with
      | Isa.Store _ ->
          [ Engine.predicated eng v (fun () -> incr fired) ]
      | _ -> []);
  Engine.run eng;
  Alcotest.(check int) "only true-predicate store analysed" 1 !fired

let test_code_cache_stats () =
  let m = Machine.create (program ()) in
  let eng = Engine.create m in
  Engine.add_ins_instrumenter eng (fun _ -> []);
  Engine.run eng;
  let s = Engine.stats eng in
  Alcotest.(check bool) "some traces compiled" true (s.compiled_traces > 0);
  Alcotest.(check bool) "hits happened (loop reuses blocks)" true
    (s.lookups > s.misses);
  Alcotest.(check int) "with cache, misses = distinct traces" s.compiled_traces
    s.misses

let test_no_code_cache () =
  let m = Machine.create (program ()) in
  let eng = Engine.create ~use_code_cache:false m in
  Engine.add_ins_instrumenter eng (fun _ -> []);
  Engine.run eng;
  let s = Engine.stats eng in
  Alcotest.(check int) "every lookup misses" s.lookups s.misses;
  Alcotest.(check int) "recompiled every time" s.lookups s.compiled_traces

let test_chaining_stats () =
  (* the loop's blocks end in direct transfers, so after the first lap every
     dispatch except the indirect Ret follows a cached trace link *)
  let m = Machine.create (program ()) in
  let eng = Engine.create m in
  Engine.run eng;
  let s = Engine.stats eng in
  Alcotest.(check bool) "steady state follows trace links" true
    (s.chain_hits > 0);
  Alcotest.(check bool) "chain hits are a subset of dispatches" true
    (s.chain_hits <= s.lookups - s.misses);
  Alcotest.(check int) "every compiled instruction is closure-compiled"
    s.compiled_instructions s.closure_instructions

let test_no_closure_compilation_without_cache () =
  let m = Machine.create (program ()) in
  let eng = Engine.create ~use_code_cache:false m in
  Engine.run eng;
  let s = Engine.stats eng in
  Alcotest.(check int) "reference path never closure-compiles" 0
    s.closure_instructions;
  Alcotest.(check int) "reference path never chains" 0 s.chain_hits

let test_uninstrumented_equivalence () =
  (* The engine must not perturb architectural results. *)
  let m1 = Machine.create (program ()) in
  Executor.run m1;
  let m2 = Machine.create (program ()) in
  let eng = Engine.create m2 in
  Engine.add_ins_instrumenter eng (fun _v -> [ (fun () -> ()) ]);
  Engine.run eng;
  Alcotest.(check int) "same instruction count" (Machine.instr_count m1)
    (Machine.instr_count m2);
  Alcotest.(check (option int)) "same exit code" (Machine.exit_code m1)
    (Machine.exit_code m2)

let test_instrumenter_registration_frozen () =
  let m = Machine.create (program ()) in
  let eng = Engine.create m in
  Engine.add_ins_instrumenter eng (fun v ->
      if Engine.Ins_view.addr v = 0 then []
      else
        [
          (fun () ->
            (* registering from inside a run must fail *)
            match Engine.add_ins_instrumenter eng (fun _ -> []) with
            | () -> Alcotest.fail "expected Invalid_argument"
            | exception Invalid_argument _ -> ());
        ]);
  Engine.run eng

let suites =
  [
    ( "dbi.engine",
      [
        Alcotest.test_case "instruction counting" `Quick test_instruction_counting;
        Alcotest.test_case "load/store counting" `Quick test_load_store_counting;
        Alcotest.test_case "effective addresses" `Quick test_effective_addresses;
        Alcotest.test_case "rtn instrumentation" `Quick test_rtn_instrumenter;
        Alcotest.test_case "predicated analysis" `Quick test_predicated_analysis;
        Alcotest.test_case "code cache stats" `Quick test_code_cache_stats;
        Alcotest.test_case "no code cache" `Quick test_no_code_cache;
        Alcotest.test_case "trace chaining stats" `Quick test_chaining_stats;
        Alcotest.test_case "no closure compilation without cache" `Quick
          test_no_closure_compilation_without_cache;
        Alcotest.test_case "transparency" `Quick test_uninstrumented_equivalence;
        Alcotest.test_case "frozen registration" `Quick
          test_instrumenter_registration_frozen;
      ] );
  ]
