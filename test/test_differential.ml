(* Differential verification of the closure-compiled/chained execution
   engine against the retained reference path.

   The engine promises observable equivalence: for any program, the
   threaded-code path (use_code_cache:true — fused closures, trace
   chaining, memory fast paths) and the reference path
   (use_code_cache:false — re-instrument every block, interpret through
   Machine.exec) must produce the same exit code, the same console output,
   the same retired-instruction count and byte-identical profiler reports.
   These properties fuzz that promise over generated MiniC programs
   (global arrays, memcpy -> Movs, cross-page traffic, console output) and
   over assembled programs with predicated loads/stores and page-straddling
   block moves; deterministic cases pin down trap and out-of-fuel parity. *)

open Tq_vm
module Engine = Tq_dbi.Engine
module Tq = Tq_tquad.Tquad
module Q = Tq_quad.Quad
module G = Tq_gprofsim.Gprofsim
module R = Tq_report.Report

(* ---------- observation helper ---------- *)

type outcome = {
  result : string; (* "exit <n>" / "fuel" / "trap@..." / "error: ..." *)
  console : string;
  instr : int;
  tquad_report : string;
  quad_report : string;
  gprof_report : string;
}

let observe ?(fuel = 5_000_000) prog ~use_code_cache =
  let m = Machine.create prog in
  let eng = Engine.create ~use_code_cache m in
  let t = Tq.attach ~slice_interval:500 eng in
  let q = Q.attach eng in
  let g = G.attach ~period:700 eng in
  let result =
    match Engine.run ~fuel eng with
    | () -> (
        match Machine.exit_code m with
        | Some c -> Printf.sprintf "exit %d" c
        | None -> "halted without exit code")
    | exception Executor.Out_of_fuel _ -> "fuel"
    | exception Machine.Trap { reason; ip } ->
        Printf.sprintf "trap@0x%x: %s" ip reason
    | exception Invalid_argument msg -> Printf.sprintf "error: %s" msg
  in
  {
    result;
    console = Machine.stdout_contents m;
    instr = Machine.instr_count m;
    tquad_report =
      (* an aborted run can leave nothing to chart; the error text is still a
         comparable observation *)
      (try R.figure t ~metric:Tq.Read_incl ~kernels:(Tq.kernels t) ~title:"fig" ()
       with Invalid_argument msg -> "no-figure: " ^ msg);
    quad_report = R.quad_table (Q.rows q);
    gprof_report = R.flat_profile (G.flat_profile g);
  }

let diverging a b =
  let field name fa fb = if fa <> fb then [ name ] else [] in
  field "result" a.result b.result
  @ field "console" a.console b.console
  @ field "instr" (string_of_int a.instr) (string_of_int b.instr)
  @ field "tquad" a.tquad_report b.tquad_report
  @ field "quad" a.quad_report b.quad_report
  @ field "gprof" a.gprof_report b.gprof_report

(* Both engine paths over the same program; true iff every observable
   agrees.  QCheck reports the diverging fields on failure. *)
let equivalent prog =
  let chained = observe prog ~use_code_cache:true in
  let reference = observe prog ~use_code_cache:false in
  match diverging chained reference with
  | [] -> true
  | fields ->
      QCheck.Test.fail_reportf "engines diverge on: %s (chained %s, ref %s)"
        (String.concat ", " fields) chained.result reference.result

(* ---------- fuzzed MiniC programs ----------

   Same always-terminating statement language as the codegen fuzzer
   (test_fuzz.ml), extended with global-array traffic and console output so
   every generated program exercises the engine's interesting paths: the
   arrays are 8 KiB each (an int is 8 bytes), so indexing and the final
   memcpy — the runtime lowers it to the Movs block move — regularly cross
   the 4 KiB page boundary the memory front-end's translation cache is
   indexed by. *)

let gen_minic =
  let open QCheck.Gen in
  let var = oneofl [ "a"; "b"; "c" ] in
  let rec expr n =
    if n <= 0 then oneof [ map string_of_int (int_range 0 99); var ]
    else
      frequency
        [
          (2, map string_of_int (int_range 0 99));
          (3, var);
          ( 3,
            map3
              (fun op l r -> Printf.sprintf "(%s %s %s)" l op r)
              (oneofl [ "+"; "-"; "*" ])
              (expr (n - 1)) (expr (n - 1)) );
          ( 1,
            map3
              (fun op l r -> Printf.sprintf "(%s %s %s)" l op r)
              (oneofl [ "<"; "=="; ">" ])
              (expr (n - 1)) (expr (n - 1)) );
        ]
  in
  let rec stmt depth in_loop =
    let base =
      [
        (4, map2 (fun v e -> Printf.sprintf "%s = %s;" v e) var (expr 2));
        (1, map (fun e -> Printf.sprintf "return %s;" e) (expr 2));
        (1, map (fun e -> Printf.sprintf "print_int(%s);" e) (expr 1));
        ( 2,
          map2
            (fun i e -> Printf.sprintf "src[%d] = %s;" i e)
            (int_range 0 1023) (expr 2) );
        ( 2,
          map2
            (fun v i -> Printf.sprintf "%s = dst[%d] + src[%d];" v i (1023 - i))
            var (int_range 0 1023) );
      ]
    in
    let nested =
      if depth <= 0 then []
      else
        [
          ( 2,
            map3
              (fun e s1 s2 ->
                Printf.sprintf "if (%s) { %s } else { %s }" e s1 s2)
              (expr 1)
              (block (depth - 1) in_loop)
              (block (depth - 1) in_loop) );
          ( 2,
            map2
              (fun e s ->
                Printf.sprintf "for (c = 0; c < %s; c = c + 1) { %s }" e s)
              (map string_of_int (int_range 1 9))
              (block (depth - 1) true) );
        ]
    in
    let loop_only =
      if in_loop then [ (1, return "break;"); (1, return "continue;") ]
      else []
    in
    frequency (base @ nested @ loop_only)
  and block depth in_loop =
    map (String.concat " ") (list_size (int_range 1 4) (stmt depth in_loop))
  in
  let func name params =
    map
      (fun body ->
        Printf.sprintf
          "int %s(%s) { int a; int b; int c; a = 0; b = 1; c = 2; %s return a; }"
          name params body)
      (block 3 false)
  in
  map
    (fun ((f, g), (main_body, (copy_len, probe))) ->
      Printf.sprintf
        "int src[1024];\n\
         int dst[1024];\n\
         %s\n\
         %s\n\
         int main() { int a; int b; int c; a = f(3); b = g(); c = 0; %s\n\
        \  for (c = 0; c < 1024; c = c + 8) { src[c] = c * 3 + a; }\n\
        \  memcpy((char*) dst, (char*) src, %d);\n\
        \  print_int(dst[%d] + b);\n\
        \  return (a + b) & 255; }"
        f g main_body copy_len probe)
    (pair
       (pair (func "f" "int a0") (func "g" ""))
       (pair (block 3 false) (pair (int_range 0 8192) (int_range 0 1023))))

let compile src = Tq_rt.Rt.link [ Tq_minic.Driver.compile_unit ~image:"app" src ]

let qcheck_minic_differential =
  QCheck.Test.make
    ~name:"fuzzed MiniC: chained engine == reference (exit/console/reports)"
    ~count:35
    (QCheck.make ~print:Fun.id gen_minic)
    (fun src -> equivalent (compile src))

(* ---------- fuzzed assembly: predicated ops + straddling Movs ----------

   Hand-shaped program parameterized by two predicate values, a Movs source
   offset and a Movs byte count, so a single run mixes: predicated stores
   and float stores whose guard is sometimes false (the access must then be
   skipped entirely, on both paths), a store at offset 4090 that straddles
   the page boundary, and a block move whose source alignment and length
   are arbitrary — including zero-length and multi-page moves. *)

let asm_src ~p1 ~p2 ~off ~len =
  Printf.sprintf
    {|
.image diff
.data buf 16384

.func _start
  la   x20, buf
  li   x10, %d
  li   x11, %d
  li   x13, 77
  sd   x13, 4090(x20) ?x10   # page-straddling, predicated
  ld   x14, 4090(x20)
  fli  f10, 2.5
  fsd  f10, 256(x20) ?x11
  fld  f11, 256(x20)
  f2i  x15, f11
  sd   x13, 0(x20)
  sd   x13, 4096(x20)
  la   x16, buf
  add  x16, x16, 8192
  la   x17, buf
  add  x17, x17, %d
  li   x18, %d
  movs (x16), (x17), x18
  ld   x19, 8192(x20)
  add  x4, x14, x15
  add  x4, x4, x19
  ld   x5, 0(x20)  ?x11
  add  x4, x4, x5
  syscall 0
.endfunc
|}
    p1 p2 off len

let asm_prog src = Tq_asm.Link.link [ Tq_asm.Asm_parse.parse src ]

let qcheck_asm_differential =
  QCheck.Test.make
    ~name:"fuzzed asm: predicated + straddling Movs, chained == reference"
    ~count:60
    QCheck.(
      quad (int_bound 1) (int_bound 1) (int_bound 4096) (int_bound 6000))
    (fun (p1, p2, off, len) ->
      equivalent (asm_prog (asm_src ~p1 ~p2 ~off ~len)))

(* ---------- deterministic parity cases ---------- *)

let check_same name src =
  Alcotest.test_case name `Quick (fun () ->
      Alcotest.(check bool) name true (equivalent (compile src)))

let test_trap_parity () =
  (* both paths must trap at the same ip with the same reason: the closure
     path keeps [pc] pointing at the executing instruction precisely so
     traps report identical addresses *)
  let src = "int main() { int a; a = 0; return 10 / a; }" in
  let prog = compile src in
  let c = observe prog ~use_code_cache:true in
  let r = observe prog ~use_code_cache:false in
  Alcotest.(check bool) "trap reported" true
    (String.length c.result > 4 && String.sub c.result 0 4 = "trap");
  Alcotest.(check string) "same trap" r.result c.result;
  Alcotest.(check int) "same retirement count" r.instr c.instr

let test_fuel_parity () =
  (* the chained fast loop must honour the fuel budget at the same
     instruction as the reference interpreter *)
  let src = ".func _start\nloop:\n  add x10, x10, 1\n  jmp loop\n.endfunc\n" in
  let prog = asm_prog src in
  let c = observe ~fuel:999 prog ~use_code_cache:true in
  let r = observe ~fuel:999 prog ~use_code_cache:false in
  Alcotest.(check string) "both out of fuel" "fuel" c.result;
  Alcotest.(check string) "same outcome" r.result c.result;
  Alcotest.(check int) "same retirement count" r.instr c.instr

let test_uninstrumented_matches_plain_executor () =
  (* with no tools attached, the closure engine is just a faster executor:
     architectural results must match [Executor.run] exactly *)
  let src =
    "int a[512]; int main() { int s; s = 0; for (int i = 0; i < 512; i++) { \
     a[i] = i * i; } memcpy((char*) a, (char*) a + 2048, 2048); for (int i = \
     0; i < 512; i++) { s += a[i]; } print_int(s); return s & 255; }"
  in
  let prog = compile src in
  let m_ref = Machine.create prog in
  Executor.run ~fuel:5_000_000 m_ref;
  let m_eng = Machine.create prog in
  let eng = Engine.create m_eng in
  Engine.run ~fuel:5_000_000 eng;
  Alcotest.(check (option int))
    "exit" (Machine.exit_code m_ref) (Machine.exit_code m_eng);
  Alcotest.(check string) "console" (Machine.stdout_contents m_ref)
    (Machine.stdout_contents m_eng);
  Alcotest.(check int) "instr" (Machine.instr_count m_ref)
    (Machine.instr_count m_eng)

let suites =
  [
    ( "differential",
      [
        QCheck_alcotest.to_alcotest qcheck_minic_differential;
        QCheck_alcotest.to_alcotest qcheck_asm_differential;
        check_same "predicated MiniC (conditional via arrays)"
          "int t[256]; int main() { int s; s = 0; for (int i = 0; i < 256; \
           i++) { if (i & 1) t[i] = i; } for (int i = 0; i < 256; i++) s += \
           t[i]; print_int(s); return s & 255; }";
        Alcotest.test_case "trap parity (same ip, same reason)" `Quick
          test_trap_parity;
        Alcotest.test_case "fuel parity (same retirement count)" `Quick
          test_fuel_parity;
        Alcotest.test_case "uninstrumented engine == plain executor" `Quick
          test_uninstrumented_matches_plain_executor;
      ] );
  ]
