(* The robustness contract of the v3 container, checked by fault injection:
   for ANY corruption of a valid trace, a strict load either yields the
   original events byte-identically or raises [Reader.Format_error] — never
   another exception, never wrong events — and a salvage load recovers a
   CRC-verified subsequence (for truncation: a prefix) of the original. *)

module Event = Tq_trace.Event
module Writer = Tq_trace.Writer
module Reader = Tq_trace.Reader
module Faultgen = Tq_faultgen.Faultgen

(* ---------- helpers ---------- *)

let read_raw path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Serialize events into an in-memory v3 container image (small chunks so
   every mutation kind has several chunks to aim at). *)
let container ?(chunk_bytes = 128) evs =
  let path = Filename.temp_file "tq_fault" ".trc" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Writer.with_file ~chunk_bytes path (fun w ->
          List.iter (Writer.emit w) evs);
      read_raw path)

let events_of r =
  let out = ref [] in
  Reader.iter r (fun ev -> out := ev :: !out);
  List.rev !out

let rec is_subseq xs ys =
  match (xs, ys) with
  | [], _ -> true
  | _, [] -> false
  | x :: xt, y :: yt -> if x = y then is_subseq xt yt else is_subseq xs yt

let rec is_prefix xs ys =
  match (xs, ys) with
  | [], _ -> true
  | _, [] -> false
  | x :: xt, y :: yt -> x = y && is_prefix xt yt

(* A deterministic golden stream: varied event kinds, strictly growing
   icounts, enough bytes for several chunks. *)
let golden_events =
  List.concat_map
    (fun i ->
      let icount = i * 7 in
      [
        Event.Rtn_entry { icount; routine = i mod 5; sp = 0x1000 + i };
        Event.Load
          { icount = icount + 1; static = i mod 3; ea = i * 24; size = 8; sp = 0x1000 + i };
        Event.Store
          { icount = icount + 2; static = -1; ea = i * 40; size = 4; sp = 0x1000 + i };
        Event.Ret { icount = icount + 3; sp = 0x1000 + i };
      ])
    (List.init 40 Fun.id)

let golden = lazy (container ~chunk_bytes:64 golden_events)

(* ---------- the central qcheck property ---------- *)

let qcheck_mutation_safety =
  QCheck.Test.make
    ~name:
      "any mutation: strict load = identical events or Format_error; \
       salvage = verified subsequence"
    ~count:150
    QCheck.(pair Test_trace.arb_events small_nat)
    (fun (evs, seed) ->
      let raw = container evs in
      let mut = Faultgen.random ~seed raw in
      let mutated = Faultgen.apply mut raw in
      let ok_strict =
        match
          let r = Reader.of_string mutated in
          events_of r
        with
        | out ->
            out = evs
            || QCheck.Test.fail_reportf
                 "strict load of [%s] succeeded with WRONG events"
                 (Faultgen.describe mut)
        | exception Reader.Format_error _ -> true
        | exception e ->
            QCheck.Test.fail_reportf
              "strict load of [%s] raised a non-Format_error: %s"
              (Faultgen.describe mut) (Printexc.to_string e)
      in
      let ok_salvage =
        match
          let r = Reader.of_string ~mode:Reader.Salvage mutated in
          events_of r
        with
        | out ->
            is_subseq out evs
            || QCheck.Test.fail_reportf
                 "salvage of [%s] returned events that are not a subsequence"
                 (Faultgen.describe mut)
        | exception Reader.Format_error _ -> true
        | exception e ->
            QCheck.Test.fail_reportf
              "salvage of [%s] raised a non-Format_error: %s"
              (Faultgen.describe mut) (Printexc.to_string e)
      in
      ok_strict && ok_salvage)

(* ---------- exhaustive truncation matrix ---------- *)

(* Truncate the golden container at EVERY byte length: strict must never
   crash with anything but Format_error, and salvage must monotonically
   recover a growing prefix of the events. *)
let test_truncation_matrix () =
  let raw = Lazy.force golden in
  let full = String.length raw in
  let prev_salvaged = ref 0 in
  for len = 0 to full do
    let cut = String.sub raw 0 len in
    (match
       let r = Reader.of_string cut in
       events_of r
     with
    | out ->
        if len <> full || out <> golden_events then
          Alcotest.failf "strict accepted a truncation to %d bytes" len
    | exception Reader.Format_error _ ->
        if len = full then
          Alcotest.failf "strict rejected the intact container"
    | exception e ->
        Alcotest.failf "strict at %d bytes raised %s" len
          (Printexc.to_string e));
    (match
       let r = Reader.of_string ~mode:Reader.Salvage cut in
       (events_of r, Reader.salvage_info r)
     with
    | out, info ->
        if not (is_prefix out golden_events) then
          Alcotest.failf "salvage at %d bytes is not a prefix" len;
        let n = List.length out in
        if n < !prev_salvaged then
          Alcotest.failf
            "salvage not monotone: %d bytes recovered %d events, %d bytes \
             recovered %d"
            (len - 1) !prev_salvaged len n;
        prev_salvaged := n;
        if info = None then
          Alcotest.failf "salvage at %d bytes reported no salvage info" len
    | exception Reader.Format_error _ ->
        (* only acceptable below a complete header *)
        if len >= Writer.header_bytes then
          Alcotest.failf "salvage gave up at %d bytes (header is %d)" len
            Writer.header_bytes
    | exception e ->
        Alcotest.failf "salvage at %d bytes raised %s" len
          (Printexc.to_string e))
  done;
  Alcotest.(check int) "full container salvages everything"
    (List.length golden_events) !prev_salvaged

(* ---------- mid-run kill (unfinalized .tmp shape) ---------- *)

let test_midrun_kill_salvage () =
  let raw = Lazy.force golden in
  let killed = Faultgen.apply Faultgen.Strip_tail raw in
  (match Reader.of_string killed with
  | _ -> Alcotest.fail "strict accepted a container with no index/trailer"
  | exception Reader.Format_error _ -> ());
  let r = Reader.of_string ~mode:Reader.Salvage killed in
  Alcotest.(check (list (Alcotest.testable Event.pp ( = ))))
    "salvage recovers every flushed chunk" golden_events (events_of r);
  match Reader.salvage_info r with
  | None -> Alcotest.fail "no salvage report"
  | Some s ->
      Alcotest.(check int) "nothing dropped" 0 s.Reader.dropped_chunks;
      Alcotest.(check bool) "reason flags the missing finalization" true
        (let lower = String.lowercase_ascii s.Reader.reason in
         let has needle =
           let nl = String.length needle and ll = String.length lower in
           let rec go i = i + nl <= ll && (String.sub lower i nl = needle || go (i + 1)) in
           go 0
         in
         has "finalized")

(* ---------- determinism of the harness itself ---------- *)

let test_sweep_deterministic () =
  let raw = Lazy.force golden in
  let s1 = Faultgen.sweep ~seed:42 ~count:12 raw in
  let s2 = Faultgen.sweep ~seed:42 ~count:12 raw in
  Alcotest.(check bool) "same seed, same sweep" true
    (List.map fst s1 = List.map fst s2
    && List.map snd s1 = List.map snd s2);
  let s3 = Faultgen.sweep ~seed:43 ~count:12 raw in
  Alcotest.(check bool) "different seed, different sweep" true
    (List.map fst s1 <> List.map fst s3)

let suites =
  [
    ( "fault",
      [
        QCheck_alcotest.to_alcotest qcheck_mutation_safety;
        Alcotest.test_case "exhaustive truncation matrix" `Slow
          test_truncation_matrix;
        Alcotest.test_case "mid-run kill: salvage recovers the prefix" `Quick
          test_midrun_kill_salvage;
        Alcotest.test_case "seeded sweeps are deterministic" `Quick
          test_sweep_deterministic;
      ] );
  ]
