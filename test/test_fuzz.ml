(* Robustness fuzzing: malformed inputs must produce the documented errors,
   never crashes or unexpected exceptions. *)

let qcheck_parser_total =
  QCheck.Test.make ~name:"parser is total over junk input" ~count:300
    QCheck.(string_gen_of_size (QCheck.Gen.int_range 0 200) QCheck.Gen.printable)
    (fun src ->
      match Tq_minic.Parser.parse src with
      | _ -> true
      | exception Tq_minic.Parser.Parse_error _ -> true
      | exception Tq_minic.Lexer.Lex_error _ -> true)

let qcheck_parser_total_structured =
  (* junk assembled from plausible C tokens exercises deeper parser paths *)
  let token =
    QCheck.Gen.oneofl
      [ "int"; "float"; "struct"; "if"; "else"; "while"; "for"; "return";
        "x"; "y"; "f"; "("; ")"; "{"; "}"; "["; "]"; ";"; ","; "+"; "*";
        "->"; "."; "="; "=="; "&&"; "1"; "2.5"; "'c'"; "\"s\""; "&"; "!" ]
  in
  QCheck.Test.make ~name:"parser is total over token soup" ~count:300
    (QCheck.make
       QCheck.Gen.(map (String.concat " ") (list_size (int_range 0 40) token)))
    (fun src ->
      match Tq_minic.Parser.parse src with
      | _ -> true
      | exception Tq_minic.Parser.Parse_error _ -> true
      | exception Tq_minic.Lexer.Lex_error _ -> true)

let qcheck_compiler_total =
  (* full pipeline: any outcome but a crash *)
  QCheck.Test.make ~name:"compiler pipeline is total over junk" ~count:150
    QCheck.(string_gen_of_size (QCheck.Gen.int_range 0 120) QCheck.Gen.printable)
    (fun src ->
      match Tq_minic.Driver.compile_unit ~image:"fuzz" src with
      | _ -> true
      | exception Tq_minic.Driver.Compile_error _ -> true)

let qcheck_wav_decode_total =
  QCheck.Test.make ~name:"wav decode never raises" ~count:300
    QCheck.(string_gen_of_size (QCheck.Gen.int_range 0 256) QCheck.Gen.char)
    (fun s ->
      match Tq_wav.Wav.decode s with Ok _ | Error _ -> true)

let qcheck_wav_decode_mutated =
  (* bit-flipped valid files must decode, error out, or change content —
     never crash *)
  QCheck.Test.make ~name:"wav decode survives mutations" ~count:200
    QCheck.(pair (int_bound 200) (int_bound 255))
    (fun (pos, byte) ->
      let good =
        Tq_wav.Wav.encode
          { Tq_wav.Wav.sample_rate = 8000;
            channels = [| Array.init 64 (fun i -> sin (float_of_int i)) |] }
      in
      let b = Bytes.of_string good in
      if pos < Bytes.length b then Bytes.set b pos (Char.chr byte);
      match Tq_wav.Wav.decode (Bytes.to_string b) with
      | Ok _ | Error _ -> true)

let qcheck_objfile_decode_total =
  QCheck.Test.make ~name:"object file decode never crashes on junk" ~count:200
    QCheck.(string_gen_of_size (QCheck.Gen.int_range 0 256) QCheck.Gen.char)
    (fun s ->
      (* with or without a valid magic prefix *)
      let candidates = [ s; Tq_vm.Objfile.magic ^ s ] in
      List.for_all
        (fun input ->
          match Tq_vm.Objfile.decode input with
          | _ -> true
          | exception Tq_vm.Objfile.Format_error _ -> true)
        candidates)

let qcheck_asm_parse_total =
  let token =
    QCheck.Gen.oneofl
      [ ".func"; ".endfunc"; ".data"; ".ascii"; ".image"; "li"; "ld"; "sd";
        "add"; "jmp"; "bz"; "call"; "ret"; "x1"; "x99"; "f2"; "5"; "0(x2)";
        "loop:"; "\"s\""; "?x3"; "(x1)" ]
  in
  QCheck.Test.make ~name:"assembler is total over token soup" ~count:300
    (QCheck.make
       QCheck.Gen.(
         map
           (fun lines -> String.concat "\n" (List.map (String.concat " ") lines))
           (list_size (int_range 0 10) (list_size (int_range 0 5) token))))
    (fun src ->
      match Tq_asm.Asm_parse.parse src with
      | _ -> true
      | exception Tq_asm.Asm_parse.Asm_error _ -> true)

(* ---------- generated-but-valid programs: codegen passes the verifier ----------

   Unlike the totality fuzzers above, this generator only produces
   well-formed MiniC: int locals a..c, arithmetic, if/while/for with break,
   continue and early returns (the shapes that make the code generator emit
   dead tails), and calls between the generated functions.  The property is
   the post-codegen gate itself: every routine the compiler emits passes
   [Staticcheck] with zero diagnostics. *)

let gen_minic_valid =
  let open QCheck.Gen in
  let var = oneofl [ "a"; "b"; "c" ] in
  let rec expr n =
    if n <= 0 then oneof [ map string_of_int (int_range 0 99); var ]
    else
      frequency
        [
          (2, map string_of_int (int_range 0 99));
          (3, var);
          ( 3,
            map3
              (fun op l r -> Printf.sprintf "(%s %s %s)" l op r)
              (oneofl [ "+"; "-"; "*" ])
              (expr (n - 1)) (expr (n - 1)) );
          ( 1,
            map3
              (fun op l r -> Printf.sprintf "(%s %s %s)" l op r)
              (oneofl [ "<"; "=="; ">" ])
              (expr (n - 1)) (expr (n - 1)) );
        ]
  in
  let rec stmt depth in_loop =
    let base =
      [
        (4, map2 (fun v e -> Printf.sprintf "%s = %s;" v e) var (expr 2));
        (1, map (fun e -> Printf.sprintf "return %s;" e) (expr 2));
      ]
    in
    let nested =
      if depth <= 0 then []
      else
        [
          ( 2,
            map3
              (fun e s1 s2 -> Printf.sprintf "if (%s) { %s } else { %s }" e s1 s2)
              (expr 1)
              (block (depth - 1) in_loop)
              (block (depth - 1) in_loop) );
          ( 2,
            map2
              (fun e s ->
                (* bounded counter loop: c is the induction variable *)
                Printf.sprintf "for (c = 0; c < %s; c = c + 1) { %s }" e s)
              (map string_of_int (int_range 1 9))
              (block (depth - 1) true) );
        ]
    in
    let loop_only =
      if in_loop then [ (1, return "break;"); (1, return "continue;") ]
      else []
    in
    frequency (base @ nested @ loop_only)
  and block depth in_loop =
    map (String.concat " ") (list_size (int_range 1 4) (stmt depth in_loop))
  in
  let func name params =
    map
      (fun body ->
        Printf.sprintf "int %s(%s) { int a; int b; int c; a = 0; b = 1; c = 2; %s return a; }"
          name params body)
      (block 3 false)
  in
  map3
    (fun f g main ->
      Printf.sprintf "%s\n%s\n%s\n" f g
        (String.concat "\n" [ main ]))
    (func "f" "int a0") (func "g" "")
    (map
       (fun body ->
         Printf.sprintf
           "int main() { int a; int b; int c; a = f(3); b = g(); c = 0; %s \
            return a + b; }"
           body)
       (block 3 false))

let qcheck_codegen_verifies =
  QCheck.Test.make ~name:"codegen output always passes the static verifier"
    ~count:150
    (QCheck.make ~print:Fun.id gen_minic_valid)
    (fun src ->
      (* verify:true raises Compile_error with the rendered diagnostics if
         any check fires; optimize exercises the second codegen path *)
      let u = Tq_minic.Driver.compile_unit ~verify:true ~image:"gen" src in
      let uo =
        Tq_minic.Driver.compile_unit ~verify:true ~optimize:true ~image:"gen"
          src
      in
      (* and the linked image (runtime included) stays clean too *)
      ignore uo;
      let prog = Tq_rt.Rt.link [ u ] in
      Tq_staticcheck.Staticcheck.check_program prog = [])

let suites =
  [
    ( "fuzz",
      [
        QCheck_alcotest.to_alcotest qcheck_parser_total;
        QCheck_alcotest.to_alcotest qcheck_parser_total_structured;
        QCheck_alcotest.to_alcotest qcheck_compiler_total;
        QCheck_alcotest.to_alcotest qcheck_wav_decode_total;
        QCheck_alcotest.to_alcotest qcheck_wav_decode_mutated;
        QCheck_alcotest.to_alcotest qcheck_objfile_decode_total;
        QCheck_alcotest.to_alcotest qcheck_asm_parse_total;
        QCheck_alcotest.to_alcotest qcheck_codegen_verifies;
      ] );
  ]
