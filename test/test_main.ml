let () =
  Alcotest.run "tquad"
    (Test_util.suites @ Test_vm.suites @ Test_dbi.suites @ Test_minic.suites @ Test_profilers.suites @ Test_wav_dsp.suites @ Test_wfs.suites @ Test_asm_parse.suites @ Test_cluster.suites @ Test_opt.suites @ Test_prof_extra.suites @ Test_minic_edge.suites @ Test_cache_sim.suites @ Test_wcet.suites @ Test_ast_print.suites @ Test_report.suites @ Test_apps.suites @ Test_objfile.suites @ Test_structs.suites @ Test_footprint.suites @ Test_isa.suites @ Test_fuzz.suites @ Test_trace.suites @ Test_fault.suites @ Test_staticcheck.suites @ Test_dataflow.suites @ Test_differential.suites @ Test_obs.suites @ Test_serve.suites @ Test_chaos.suites
    @ Test_compress.suites)
