(* lib/obs: JSON codec round-trips, metrics registry semantics, span
   recording, manifest schema validation, and the replay timing hooks the
   manifest's ["replay"] section is built from. *)

module Json = Tq_obs.Json
module Metrics = Tq_obs.Metrics
module Span = Tq_obs.Span
module Manifest = Tq_obs.Manifest
module Event = Tq_trace.Event
module Writer = Tq_trace.Writer
module Reader = Tq_trace.Reader
module Replay = Tq_trace.Replay

(* ---------- JSON ---------- *)

(* Generated floats are multiples of 1/16 — exactly representable in binary,
   so print-then-parse must reproduce them bit-for-bit. *)
let arb_json =
  let open QCheck in
  let leaf =
    Gen.oneof
      [ Gen.return Json.Null;
        Gen.map (fun b -> Json.Bool b) Gen.bool;
        Gen.map (fun i -> Json.Int i) Gen.small_signed_int;
        Gen.map
          (fun k -> Json.Float (float_of_int k /. 16.))
          (Gen.int_range (-4096) 4096);
        Gen.map (fun s -> Json.Str s) Gen.small_string ]
  in
  let gen =
    Gen.sized (fun n ->
        Gen.fix
          (fun self n ->
            if n <= 0 then leaf
            else
              Gen.oneof
                [ leaf;
                  Gen.map (fun l -> Json.List l)
                    (Gen.list_size (Gen.int_bound 4) (self (n / 2)));
                  Gen.map (fun l -> Json.Obj l)
                    (Gen.list_size (Gen.int_bound 4)
                       (Gen.pair Gen.small_string (self (n / 2)))) ])
          (min n 6))
  in
  make gen

let qcheck_json_roundtrip =
  QCheck.Test.make ~name:"json: of_string o to_string = id" ~count:300 arb_json
    (fun v -> Json.of_string (Json.to_string v) = v)

let test_json_int_float_distinct () =
  (* the schema relies on Int vs Float surviving a round-trip *)
  let check v =
    Alcotest.(check bool)
      (Json.to_string v) true
      (Json.of_string (Json.to_string v) = v)
  in
  check (Json.Int 1);
  check (Json.Float 1.);
  check (Json.Float (-0.5));
  check (Json.Int max_int);
  Alcotest.(check string) "float prints with point" "1.0\n"
    (Json.to_string (Json.Float 1.));
  Alcotest.(check string) "int prints bare" "1\n" (Json.to_string (Json.Int 1))

let test_json_escapes () =
  let v = Json.Str "a\"b\\c\n\t\x01é" in
  Alcotest.(check bool) "escaped string round-trips" true
    (Json.of_string (Json.to_string v) = v);
  let parsed = Json.of_string {|"éA"|} in
  Alcotest.(check bool) "unicode escapes decode to UTF-8" true
    (parsed = Json.Str "\xc3\xa9A")

let test_json_parse_errors () =
  let bad s =
    match Json.of_string s with
    | exception Json.Parse_error _ -> ()
    | v -> Alcotest.failf "parsed %S as %s" s (Json.to_string v)
  in
  bad "";
  bad "{";
  bad "[1,]";
  bad "{\"a\":1,}";
  bad "nul";
  bad "1 garbage";
  bad "\"unterminated";
  bad "01"

(* ---------- metrics ---------- *)

let test_metrics_enabled () =
  let r = Metrics.create () in
  let c = Metrics.counter r ~unit_:"events" "events_out" in
  Metrics.add c 5;
  Metrics.incr c;
  Alcotest.(check int) "counter accumulates" 6 (Metrics.counter_value c);
  let c' = Metrics.counter r "events_out" in
  Metrics.add c' 4;
  Alcotest.(check int) "same name, same instrument" 10 (Metrics.counter_value c);
  let g = Metrics.gauge r "depth" in
  Metrics.set g 3.5;
  Metrics.set g 2.0;
  Alcotest.(check (float 0.)) "gauge is last-value-wins" 2.0
    (Metrics.gauge_value g);
  let t = Metrics.timer r "phase" in
  Metrics.observe t 0.25;
  Metrics.observe t 0.75;
  let v = Metrics.time t (fun () -> 42) in
  Alcotest.(check int) "time returns the thunk's value" 42 v;
  Alcotest.(check int) "timer count" 3 (Metrics.timer_count t);
  Alcotest.(check bool) "timer total >= observed" true
    (Metrics.timer_total t >= 1.0)

let test_metrics_disabled () =
  let c = Metrics.counter Metrics.disabled "dead" in
  Metrics.add c 1_000;
  Metrics.incr c;
  Alcotest.(check int) "dead counter never accumulates" 0
    (Metrics.counter_value c);
  let g = Metrics.gauge Metrics.disabled "dead_g" in
  Metrics.set g 9.9;
  Alcotest.(check (float 0.)) "dead gauge stays zero" 0. (Metrics.gauge_value g);
  let t = Metrics.timer Metrics.disabled "dead_t" in
  Metrics.observe t 1.0;
  Alcotest.(check int) "dead timer records nothing" 0 (Metrics.timer_count t);
  Alcotest.(check bool) "disabled registry reports disabled" false
    (Metrics.is_enabled Metrics.disabled)

let test_metrics_to_json () =
  let r = Metrics.create () in
  Metrics.add (Metrics.counter r ~unit_:"bytes" "written") 128;
  Metrics.set (Metrics.gauge r "ratio") 0.5;
  Metrics.observe (Metrics.timer r "stage") 0.125;
  let j = Metrics.to_json r in
  let get path =
    List.fold_left
      (fun acc k -> Option.bind acc (Json.member k))
      (Some j) path
  in
  Alcotest.(check bool) "counter value" true
    (get [ "counters"; "written"; "value" ] = Some (Json.Int 128));
  Alcotest.(check bool) "counter unit" true
    (get [ "counters"; "written"; "unit" ] = Some (Json.Str "bytes"));
  Alcotest.(check bool) "gauge value" true
    (get [ "gauges"; "ratio"; "value" ] = Some (Json.Float 0.5));
  Alcotest.(check bool) "timer count" true
    (get [ "timers"; "stage"; "count" ] = Some (Json.Int 1))

(* ---------- spans ---------- *)

let test_span_recording () =
  let r = Span.create () in
  let v =
    Span.with_span r "outer" (fun () ->
        Span.with_span r ~attrs:(fun () -> [ ("n", 7) ]) "inner" (fun () -> ());
        17)
  in
  Alcotest.(check int) "with_span returns the thunk's value" 17 v;
  let spans = Span.spans r in
  Alcotest.(check int) "two spans recorded" 2 (List.length spans);
  let find name = List.find (fun s -> s.Span.name = name) spans in
  let outer = find "outer" and inner = find "inner" in
  Alcotest.(check bool) "inner attrs recorded" true
    (inner.Span.attrs = [ ("n", 7) ]);
  Alcotest.(check bool) "outer attrs empty" true (outer.Span.attrs = []);
  (* timestamps at gettimeofday resolution can tie, so only weak ordering
     holds *)
  Alcotest.(check bool) "outer starts no later than inner" true
    (outer.Span.start_s <= inner.Span.start_s);
  Alcotest.(check bool) "outer contains inner" true
    (outer.Span.wall_s >= inner.Span.wall_s)

let test_span_failure () =
  let r = Span.create () in
  (match Span.with_span r "failing" (fun () -> failwith "boom") with
  | () -> Alcotest.fail "exception swallowed"
  | exception Failure msg -> Alcotest.(check string) "re-raised" "boom" msg);
  match Span.spans r with
  | [ s ] ->
      Alcotest.(check bool) "failure attr recorded" true
        (s.Span.attrs = [ ("failed", 1) ])
  | spans -> Alcotest.failf "expected 1 span, got %d" (List.length spans)

let test_span_disabled () =
  Alcotest.(check int) "disabled recorder stores nothing" 0
    (List.length (Span.spans Span.disabled));
  let v = Span.with_span Span.disabled "x" (fun () -> 3) in
  Alcotest.(check int) "disabled with_span is the call" 3 v;
  Alcotest.(check int) "still nothing stored" 0
    (List.length (Span.spans Span.disabled))

(* ---------- manifests ---------- *)

let sample_manifest () =
  let spans = Span.create () in
  let metrics = Metrics.create () in
  Span.with_span spans ~attrs:(fun () -> [ ("instructions", 42) ]) "execute"
    (fun () -> ());
  Metrics.add (Metrics.counter metrics ~unit_:"events" "events_out") 9;
  Manifest.make ~tool:"tquad" ~subcommand:"test"
    ~argv:[ "tquad"; "test" ]
    ~extra:
      [ ( "engine",
          Json.Obj [ ("lookups", Json.Int 3); ("chain_hits", Json.Int 2) ] );
        ( "trace",
          Json.Obj
            [ ("version", Json.Int 3);
              ("events", Json.Int 9);
              ("fingerprint", Json.Str "00000000deadbeef");
              ("crc_verify_s", Json.Float 0.125) ] );
        ( "replay",
          Json.Obj
            [ ("domains", Json.Int 2);
              ( "timings",
                Json.List
                  [ Json.Obj
                      [ ("domain", Json.Int 0);
                        ("jobs", Json.List [ Json.Str "tquad" ]);
                        ("wall_s", Json.Float 0.5) ] ] ) ] ) ]
    spans metrics

let test_manifest_roundtrip () =
  let doc = sample_manifest () in
  (match Manifest.validate doc with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "fresh manifest invalid: %s" msg);
  let path = Filename.temp_file "tq_obs" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Manifest.write path doc;
      let loaded = Manifest.load path in
      Alcotest.(check bool) "write o load = id" true (loaded = doc);
      match Manifest.validate loaded with
      | Ok () -> ()
      | Error msg -> Alcotest.failf "loaded manifest invalid: %s" msg)

let test_manifest_extra_collision () =
  let spans = Span.create () and metrics = Metrics.create () in
  let mk extra () =
    ignore (Manifest.make ~tool:"t" ~subcommand:"s" ~extra spans metrics)
  in
  Alcotest.check_raises "required-member collision"
    (Invalid_argument "Manifest.make: duplicate section \"spans\"")
    (mk [ ("spans", Json.Null) ]);
  Alcotest.check_raises "repeated section"
    (Invalid_argument "Manifest.make: duplicate section \"engine\"")
    (mk [ ("engine", Json.Obj []); ("engine", Json.Obj []) ])

let test_manifest_validate_negative () =
  let invalid doc =
    match Manifest.validate doc with
    | Error _ -> ()
    | Ok () -> Alcotest.failf "accepted %s" (Json.to_string doc)
  in
  invalid Json.Null;
  invalid (Json.Obj []);
  let base =
    match sample_manifest () with Json.Obj m -> m | _ -> assert false
  in
  let with_member k v =
    Json.Obj (List.map (fun (k', v') -> (k', if k' = k then v else v')) base)
  in
  invalid (with_member "schema_version" (Json.Int 999));
  invalid (with_member "tool" (Json.Int 1));
  invalid (with_member "argv" (Json.List [ Json.Int 1 ]));
  invalid (with_member "spans" (Json.List [ Json.Obj [] ]));
  invalid (with_member "metrics" (Json.Obj []));
  invalid (with_member "engine" (Json.Obj [ ("lookups", Json.Str "three") ]));
  invalid (with_member "trace" (Json.Obj [ ("events", Json.Str "many") ]));
  invalid
    (with_member "replay" (Json.Obj [ ("timings", Json.List [ Json.Obj [] ]) ]));
  (* unknown sections and unknown members of known sections are allowed *)
  match
    Manifest.validate
      (Json.Obj (base @ [ ("custom_section", Json.Str "anything") ]))
  with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "unknown section rejected: %s" msg

let test_cli_manifest_validates () =
  (* a manifest produced by the real pipeline (wfs tiny under record) must
     satisfy the schema the tests enforce *)
  let scen = Tq_wfs.Scenario.tiny in
  let eng =
    Tq_dbi.Engine.create
      (Tq_vm.Machine.create
         ~vfs:(Tq_wfs.Harness.make_vfs scen)
         (Tq_wfs.Harness.compile scen))
  in
  let spans = Span.create () and metrics = Metrics.create () in
  let path = Filename.temp_file "tq_obs" ".trc" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let events =
        Span.with_span spans "record" (fun () ->
            Tq_trace.Probe.record ~fuel:(Tq_wfs.Harness.fuel scen) eng ~path)
      in
      Metrics.add (Metrics.counter metrics ~unit_:"events" "events_out") events;
      let r = Reader.load path in
      let s = Tq_dbi.Engine.stats eng in
      let doc =
        Manifest.make ~tool:"tquad" ~subcommand:"record"
          ~argv:[ "tquad"; "record" ]
          ~extra:
            [ ( "engine",
                Json.Obj
                  [ ("lookups", Json.Int s.Tq_dbi.Engine.lookups);
                    ("chain_hits", Json.Int s.Tq_dbi.Engine.chain_hits) ] );
              ( "trace",
                Json.Obj
                  [ ("version", Json.Int (Reader.version r));
                    ("events", Json.Int (Reader.n_events r));
                    ("chunks", Json.Int (Reader.n_chunks r));
                    ("bytes", Json.Int (Reader.byte_size r)) ] ) ]
          spans metrics
      in
      (match Manifest.validate doc with
      | Ok () -> ()
      | Error msg -> Alcotest.failf "pipeline manifest invalid: %s" msg);
      Alcotest.(check bool) "recorded events" true (events > 0))

(* ---------- reader CRC check / replay timings ---------- *)

let write_trace path =
  Writer.with_file ~chunk_bytes:128 path (fun w ->
      for i = 1 to 200 do
        Writer.emit w
          (Event.Load { icount = i; static = 0; ea = 8 * i; size = 4; sp = 0 })
      done;
      Writer.emit w (Event.End { icount = 201 }))

let test_crc_check () =
  let path = Filename.temp_file "tq_obs" ".trc" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      write_trace path;
      let r = Reader.load path in
      Alcotest.(check int) "checks every chunk" (Reader.n_chunks r)
        (Reader.crc_check r);
      Alcotest.(check bool) "several chunks present" true
        (Reader.n_chunks r > 1))

let test_crc_check_corrupt () =
  let path = Filename.temp_file "tq_obs" ".trc" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      write_trace path;
      let raw = In_channel.with_open_bin path In_channel.input_all in
      (* flip one payload byte mid-file; the lazily-verifying loader accepts
         it, crc_check must not *)
      let b = Bytes.of_string raw in
      let pos = Bytes.length b / 2 in
      Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor 0x40));
      let r = Reader.of_string ~verify:false (Bytes.to_string b) in
      match Reader.crc_check r with
      | n -> Alcotest.failf "corrupt trace passed crc_check (%d chunks)" n
      | exception Reader.Format_error _ -> ())

let count_jobs names =
  List.map
    (fun name ->
      Replay.job name (fun () ->
          let n = ref 0 in
          ((fun _ -> incr n), fun () -> string_of_int !n)))
    names

let test_sequential_timings () =
  let path = Filename.temp_file "tq_obs" ".trc" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      write_trace path;
      let r = Reader.load path in
      let timings = ref [] in
      let results =
        Replay.sequential
          ~timings:(fun ts -> timings := ts)
          r
          (count_jobs [ "a"; "b" ])
      in
      Alcotest.(check int) "one timing per job" 2 (List.length !timings);
      List.iter
        (fun (t : Replay.domain_timing) ->
          Alcotest.(check int) "sequential runs on domain 0" 0 t.Replay.domain;
          Alcotest.(check bool) "wall time non-negative" true (t.wall_s >= 0.))
        !timings;
      Alcotest.(check bool) "job names recorded in run order" true
        (List.map (fun (t : Replay.domain_timing) -> t.jobs) !timings
        = [ [ "a" ]; [ "b" ] ]);
      Alcotest.(check bool) "all jobs saw all events" true
        (List.for_all (fun (_, o) -> o = Ok "201") results))

let test_parallel_timings () =
  let path = Filename.temp_file "tq_obs" ".trc" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      write_trace path;
      let r = Reader.load path in
      let timings = ref [] in
      let results =
        Replay.parallel ~domains:2
          ~timings:(fun ts -> timings := ts)
          r
          (count_jobs [ "a"; "b"; "c" ])
      in
      Alcotest.(check bool) "all jobs complete" true
        (List.for_all (fun (_, o) -> o = Ok "201") results);
      let covered =
        List.concat_map (fun (t : Replay.domain_timing) -> t.jobs) !timings
        |> List.sort compare
      in
      Alcotest.(check (list string)) "every job appears in exactly one group"
        [ "a"; "b"; "c" ] covered;
      List.iter
        (fun (t : Replay.domain_timing) ->
          Alcotest.(check bool) "wall time non-negative" true (t.wall_s >= 0.))
        !timings)

let suites =
  [ ( "obs",
      [ QCheck_alcotest.to_alcotest qcheck_json_roundtrip;
        Alcotest.test_case "json: int/float distinction survives" `Quick
          test_json_int_float_distinct;
        Alcotest.test_case "json: string escapes" `Quick test_json_escapes;
        Alcotest.test_case "json: parse errors" `Quick test_json_parse_errors;
        Alcotest.test_case "metrics: enabled registry accumulates" `Quick
          test_metrics_enabled;
        Alcotest.test_case "metrics: disabled registry is dead" `Quick
          test_metrics_disabled;
        Alcotest.test_case "metrics: to_json shape" `Quick test_metrics_to_json;
        Alcotest.test_case "span: nested recording" `Quick test_span_recording;
        Alcotest.test_case "span: failure recorded and re-raised" `Quick
          test_span_failure;
        Alcotest.test_case "span: disabled recorder" `Quick test_span_disabled;
        Alcotest.test_case "manifest: make/write/load/validate round-trip"
          `Quick test_manifest_roundtrip;
        Alcotest.test_case "manifest: extra-section collisions" `Quick
          test_manifest_extra_collision;
        Alcotest.test_case "manifest: validation rejects bad shapes" `Quick
          test_manifest_validate_negative;
        Alcotest.test_case "manifest: real pipeline manifest validates" `Slow
          test_cli_manifest_validates;
        Alcotest.test_case "reader: crc_check counts chunks" `Quick
          test_crc_check;
        Alcotest.test_case "reader: crc_check catches corruption" `Quick
          test_crc_check_corrupt;
        Alcotest.test_case "replay: sequential timings" `Quick
          test_sequential_timings;
        Alcotest.test_case "replay: parallel timings" `Quick
          test_parallel_timings ] ) ]
