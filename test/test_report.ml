open Tq_vm
open Tq_dbi
module R = Tq_report.Report
module Tq = Tq_tquad.Tquad

let pc_src =
  "int src[16]; int dst[16];\n\
   void producer() { for (int i = 0; i < 16; i++) src[i] = i; }\n\
   void consumer() { int s; s = 0; for (int i = 0; i < 16; i++) s += src[i];\n\
  \                  dst[0] = s; }\n\
   int main() { producer(); consumer(); return 0; }"

let engine () =
  let prog = Tq_rt.Rt.link [ Tq_minic.Driver.compile_unit ~image:"app" pc_src ] in
  Engine.create (Machine.create prog)

let tquad_run () =
  let eng = engine () in
  let t = Tq.attach ~slice_interval:100 eng in
  Engine.run eng;
  t

let test_flat_profile_render () =
  let eng = engine () in
  let g = Tq_gprofsim.Gprofsim.attach ~period:100 eng in
  Engine.run eng;
  let s = R.flat_profile (Tq_gprofsim.Gprofsim.flat_profile g) in
  Alcotest.(check bool) "has header" true
    (Astring_contains.contains s "self ms/call");
  Alcotest.(check bool) "has producer row" true
    (Astring_contains.contains s "producer")

let test_quad_table_render () =
  let eng = engine () in
  let q = Tq_quad.Quad.attach eng in
  Engine.run eng;
  let s = R.quad_table (Tq_quad.Quad.rows q) in
  Alcotest.(check bool) "has UnMA columns" true
    (Astring_contains.contains s "OUT UnMA (incl)");
  Alcotest.(check bool) "thousands separated" true
    (Astring_contains.contains s "128")

let test_instrumented_profile_trends () =
  let fake name pct self calls =
    {
      Tq_gprofsim.Gprofsim.routine =
        { Symtab.id = 0; name; entry = 0; size = 4; image = "x"; is_main_image = true };
      pct_time = pct;
      self_seconds = self;
      calls;
      self_ms_per_call = 0.;
      total_ms_per_call = 0.;
      samples = 0;
    }
  in
  let base = [ fake "a" 50. 0.5 1; fake "b" 30. 0.3 1; fake "c" 20. 0.2 1 ] in
  (* c explodes under instrumentation; a collapses *)
  let adjusted = [ ("a", 0.1); ("b", 0.3); ("c", 0.9) ] in
  let s = R.instrumented_profile ~base ~adjusted in
  (* row order follows base; ranks recomputed *)
  Alcotest.(check bool) "c promoted with ^" true
    (Astring_contains.contains s "| c")
  ;
  (* c moved rank 3 -> 1: ^^ ; a moved 1 -> 3: v or vv *)
  Alcotest.(check bool) "has upward arrow" true (Astring_contains.contains s "^");
  Alcotest.(check bool) "has downward arrow" true (Astring_contains.contains s "v")

let test_phase_table_groups () =
  let t = tquad_run () in
  let s =
    R.phase_table t
      [ ("produce", [ "producer" ]); ("consume", [ "consumer" ]);
        ("ghost", [ "does_not_exist" ]) ]
  in
  Alcotest.(check bool) "producer section" true
    (Astring_contains.contains s "produce");
  Alcotest.(check bool) "consumer section" true
    (Astring_contains.contains s "consume");
  Alcotest.(check bool) "ghost skipped" true
    (not (Astring_contains.contains s "ghost"))

let test_figure_and_csv () =
  let t = tquad_run () in
  let kernels = Tq.kernels t in
  let fig = R.figure t ~metric:Tq.Read_incl ~kernels ~title:"reads" () in
  Alcotest.(check bool) "figure title" true (Astring_contains.contains fig "reads");
  let csv = R.figure_csv t ~metric:Tq.Read_incl ~kernels in
  let lines = String.split_on_char '\n' csv in
  Alcotest.(check bool) "csv header has kernels" true
    (Astring_contains.contains (List.hd lines) "producer");
  (* data rows = total slices + header + trailing newline *)
  Alcotest.(check int) "csv rows" (Tq.total_slices t + 2) (List.length lines)

let test_chrome_trace () =
  let t = tquad_run () in
  let json = R.chrome_trace t in
  Alcotest.(check bool) "array brackets" true
    (String.length json > 2 && json.[0] = '[');
  Alcotest.(check bool) "has complete events" true
    (Astring_contains.contains json "\"ph\":\"X\"");
  Alcotest.(check bool) "has producer track" true
    (Astring_contains.contains json "\"name\":\"producer\"");
  Alcotest.(check bool) "has bpi args" true
    (Astring_contains.contains json "\"bpi\":");
  (* crude structural check: balanced braces *)
  let opens = String.fold_left (fun a c -> if c = '{' then a + 1 else a) 0 json in
  let closes = String.fold_left (fun a c -> if c = '}' then a + 1 else a) 0 json in
  Alcotest.(check int) "balanced JSON objects" opens closes

let test_determinism () =
  (* two identical instrumented runs must produce identical reports *)
  let s1 = R.chrome_trace (tquad_run ()) in
  let s2 = R.chrome_trace (tquad_run ()) in
  Alcotest.(check bool) "deterministic profiling" true (s1 = s2)

(* ---------- golden renders ----------

   A hand-built symbol table and a fixed synthetic event stream pin the
   renderers' exact output, independent of the MiniC compiler: any byte-level
   change to [chrome_trace] or [figure_csv] must update these goldens
   deliberately (docs/METRICS.md documents both formats). *)

let golden_tquad () =
  let rtn id name entry =
    { Symtab.id; name; entry; size = 64; image = "app"; is_main_image = true }
  in
  let symtab = Symtab.build [ rtn 0 "alpha" 0x400000; rtn 1 "beta" 0x400040 ] in
  let id name = (Option.get (Symtab.by_name symtab name)).Symtab.id in
  let alpha = id "alpha" and beta = id "beta" in
  let t =
    Tq.create ~slice_interval:10 ~policy:Tq_prof.Call_stack.Track_all symtab
  in
  let open Tq_trace.Event in
  let sp = 0x7eff_0000_0000 in
  (* slice 0: alpha reads 8 global + 8 stack bytes, writes 4; slice 1: beta
     reads 8; slice 2: alpha writes 8 (no reads) *)
  List.iter (Tq.consume t)
    [ Rtn_entry { icount = 0; routine = alpha; sp };
      Load { icount = 2; static = alpha; ea = 0x1000_0000; size = 8; sp };
      Store { icount = 5; static = alpha; ea = 0x1000_0010; size = 4; sp };
      Load { icount = 7; static = alpha; ea = sp; size = 8; sp };
      Rtn_entry { icount = 12; routine = beta; sp = sp - 16 };
      Load { icount = 14; static = beta; ea = 0x1000_0020; size = 8; sp = sp - 16 };
      Ret { icount = 18; sp = sp - 16 };
      Store { icount = 25; static = alpha; ea = 0x1000_0000; size = 8; sp };
      End { icount = 30 } ];
  t

let test_chrome_trace_golden () =
  let t = golden_tquad () in
  let expected =
    "[\n\
     {\"name\":\"alpha\",\"ph\":\"X\",\"pid\":1,\"tid\":0,\"ts\":0.000,\"dur\":0.010,\"args\":{\"bytes\":20,\"bpi\":2.0000}},\n\
     {\"name\":\"alpha\",\"ph\":\"X\",\"pid\":1,\"tid\":0,\"ts\":0.020,\"dur\":0.010,\"args\":{\"bytes\":8,\"bpi\":0.8000}},\n\
     {\"name\":\"beta\",\"ph\":\"X\",\"pid\":1,\"tid\":1,\"ts\":0.010,\"dur\":0.010,\"args\":{\"bytes\":8,\"bpi\":0.8000}}\n\
     ]\n"
  in
  Alcotest.(check string) "chrome trace golden" expected (R.chrome_trace t)

let test_figure_csv_golden () =
  let t = golden_tquad () in
  let kernels = Tq.kernels t in
  Alcotest.(check string) "read-inclusive csv golden"
    "slice,alpha,beta\n0,1.600000,0.000000\n1,0.000000,0.800000\n2,0.000000,0.000000\n"
    (R.figure_csv t ~metric:Tq.Read_incl ~kernels);
  (* the stack-area load in slice 0 must vanish from the exclusive series *)
  Alcotest.(check string) "read-exclusive csv golden"
    "slice,alpha,beta\n0,0.800000,0.000000\n1,0.000000,0.800000\n2,0.000000,0.000000\n"
    (R.figure_csv t ~metric:Tq.Read_excl ~kernels)

let test_profile_diff () =
  (* "revise" the program: hoist an invariant computation out of the loop *)
  let before_src =
    "int a[256];\n\
     void work() { for (int r = 0; r < 40; r++) for (int i = 0; i < 256; i++)\n\
     a[i] = a[i] + (r * r * 7) % 13; }\n\
     int main() { work(); return 0; }"
  in
  let after_src =
    "int a[256];\n\
     void work() { for (int r = 0; r < 40; r++) { int k; k = (r * r * 7) % 13;\n\
     for (int i = 0; i < 256; i++) a[i] = a[i] + k; } }\n\
     int main() { work(); return 0; }"
  in
  let profile src =
    let prog = Tq_rt.Rt.link [ Tq_minic.Driver.compile_unit ~image:"app" src ] in
    let eng = Engine.create (Machine.create prog) in
    let g = Tq_gprofsim.Gprofsim.attach ~period:200 eng in
    Engine.run eng;
    Tq_gprofsim.Gprofsim.flat_profile g
  in
  let before = profile before_src and after = profile after_src in
  let s = R.profile_diff ~before ~after in
  Alcotest.(check bool) "has work row" true (Astring_contains.contains s "work");
  Alcotest.(check bool) "has delta column" true
    (Astring_contains.contains s "delta");
  (* the revision must show a negative delta for work *)
  let self rows =
    (List.find
       (fun (r : Tq_gprofsim.Gprofsim.row) -> r.routine.Symtab.name = "work")
       rows)
      .Tq_gprofsim.Gprofsim.self_seconds
  in
  Alcotest.(check bool) "revision faster" true (self after < self before);
  (* gone/new markers *)
  let only_before =
    R.profile_diff ~before ~after:(List.filter (fun _ -> false) after)
  in
  Alcotest.(check bool) "gone marker" true
    (Astring_contains.contains only_before "gone")

let suites =
  [
    ( "report",
      [
        Alcotest.test_case "flat profile render" `Quick test_flat_profile_render;
        Alcotest.test_case "quad table render" `Quick test_quad_table_render;
        Alcotest.test_case "trend arrows" `Quick test_instrumented_profile_trends;
        Alcotest.test_case "phase table groups" `Quick test_phase_table_groups;
        Alcotest.test_case "figure + csv" `Quick test_figure_and_csv;
        Alcotest.test_case "chrome trace" `Quick test_chrome_trace;
        Alcotest.test_case "chrome trace golden" `Quick
          test_chrome_trace_golden;
        Alcotest.test_case "figure csv golden" `Quick test_figure_csv_golden;
        Alcotest.test_case "determinism" `Quick test_determinism;
        Alcotest.test_case "profile diff" `Quick test_profile_diff;
      ] );
  ]

