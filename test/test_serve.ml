(* The serve layer's contracts: the chunk cache evicts in LRU order with
   honest accounting, the token bucket refills on its injected clock, the
   job queue refuses (never grows) past its bound, chunks CRC-verify at most
   once per process, protocol frames round-trip, and a real client/server
   conversation over a Unix socket produces reports byte-identical to a
   direct replay. *)

open Tq_vm
open Tq_dbi
module Event = Tq_trace.Event
module Reader = Tq_trace.Reader
module Replay = Tq_trace.Replay
module Probe = Tq_trace.Probe
module Lru = Tq_serve.Lru
module Limiter = Tq_serve.Limiter
module Protocol = Tq_serve.Protocol
module Toolset = Tq_serve.Toolset
module Jobs = Tq_serve.Jobs
module Server = Tq_serve.Server
module Client = Tq_serve.Client
module Json = Tq_obs.Json

(* ---------- fixture: a small multi-chunk recording ---------- *)

let src =
  "int buf[256];\n\
   void fill(int k) { for (int i = 0; i < 256; i++) buf[i] = i + k; }\n\
   int total() { int s; s = 0; for (int i = 0; i < 256; i++) s += buf[i];\n\
  \              return s; }\n\
   int main() { int t; t = 0;\n\
  \             for (int r = 0; r < 40; r++) { fill(r); t += total(); }\n\
  \             return t - t; }"

(* One recording shared by every test in the file (recorded once, lazily):
   the serve layer treats readers and programs as immutable, so sharing is
   exactly the aliasing the daemon itself does. *)
let fixture =
  lazy
    (let prog =
       Tq_rt.Rt.link [ Tq_minic.Driver.compile_unit ~image:"app" src ]
     in
     let m = Machine.create prog in
     let eng = Engine.create m in
     let path = Filename.temp_file "tq_serve_test" ".trc" in
     let _events : int = Probe.record ~chunk_bytes:4096 eng ~path in
     let ic = open_in_bin path in
     let bytes =
       Fun.protect
         ~finally:(fun () -> close_in_noerr ic)
         (fun () -> really_input_string ic (in_channel_length ic))
     in
     Sys.remove path;
     (prog, bytes))

let fresh_reader () =
  let _, bytes = Lazy.force fixture in
  Reader.of_string bytes

(* ---------- LRU ---------- *)

let k i : Lru.key = (Int64.of_int 7, i)

let test_lru_eviction_order () =
  let c = Lru.create ~capacity:100 in
  Lru.add c (k 1) ~weight:40 "a";
  Lru.add c (k 2) ~weight:40 "b";
  (* touch 1 so 2 becomes least-recently-used *)
  Alcotest.(check (option string)) "hit on 1" (Some "a") (Lru.find c (k 1));
  Lru.add c (k 3) ~weight:40 "c";
  Alcotest.(check (option string)) "2 was evicted" None (Lru.find c (k 2));
  Alcotest.(check (option string)) "1 survived" (Some "a") (Lru.find c (k 1));
  Alcotest.(check (option string)) "3 resident" (Some "c") (Lru.find c (k 3));
  let s = Lru.stats c in
  Alcotest.(check int) "hits" 3 s.Lru.hits;
  Alcotest.(check int) "misses" 1 s.Lru.misses;
  Alcotest.(check int) "evictions" 1 s.Lru.evictions;
  Alcotest.(check int) "entries" 2 s.Lru.entries;
  Alcotest.(check int) "weight" 80 s.Lru.weight;
  Alcotest.(check (float 1e-9)) "hit rate" 0.75 (Lru.hit_rate s)

let test_lru_oversized_entry () =
  let c = Lru.create ~capacity:100 in
  Lru.add c (k 1) ~weight:40 "a";
  (* heavier than the whole budget: not cached, evicts nothing *)
  Lru.add c (k 2) ~weight:200 "big";
  Alcotest.(check (option string)) "oversized absent" None (Lru.find c (k 2));
  Alcotest.(check (option string)) "resident survived" (Some "a")
    (Lru.find c (k 1));
  let s = Lru.stats c in
  Alcotest.(check int) "no evictions" 0 s.Lru.evictions;
  Alcotest.(check int) "one entry" 1 s.Lru.entries;
  Alcotest.(check int) "weight unchanged" 40 s.Lru.weight

let test_lru_readd_touches () =
  let c = Lru.create ~capacity:100 in
  Lru.add c (k 1) ~weight:40 "a";
  Lru.add c (k 2) ~weight:40 "b";
  (* re-adding 1 must touch it (and keep the resident value), not duplicate *)
  Lru.add c (k 1) ~weight:40 "ignored";
  Lru.add c (k 3) ~weight:40 "c";
  Alcotest.(check (option string)) "2 evicted as LRU" None (Lru.find c (k 2));
  Alcotest.(check (option string)) "1 keeps its original value" (Some "a")
    (Lru.find c (k 1));
  Alcotest.(check int) "weight accounts once" 80 (Lru.stats c).Lru.weight

(* ---------- token bucket ---------- *)

let test_limiter_burst_and_refill () =
  let now = ref 0. in
  let l = Limiter.create ~now:(fun () -> !now) ~rate:2. ~burst:2 () in
  Alcotest.(check bool) "burst 1" true (Limiter.try_take l);
  Alcotest.(check bool) "burst 2" true (Limiter.try_take l);
  Alcotest.(check bool) "empty" false (Limiter.try_take l);
  Alcotest.(check (float 1e-9)) "retry hint" 0.5 (Limiter.retry_after l);
  (* half a second at 2 tokens/s accrues exactly one token *)
  now := 0.5;
  Alcotest.(check bool) "refilled one" true (Limiter.try_take l);
  Alcotest.(check bool) "only one" false (Limiter.try_take l);
  (* a long idle caps at the burst depth, not rate * dt *)
  now := 100.;
  Alcotest.(check bool) "cap 1" true (Limiter.try_take l);
  Alcotest.(check bool) "cap 2" true (Limiter.try_take l);
  Alcotest.(check bool) "cap is burst" false (Limiter.try_take l);
  Alcotest.(check int) "allowed" 5 (Limiter.allowed l);
  Alcotest.(check int) "rejected" 3 (Limiter.rejected l)

let test_limiter_no_wait_when_full () =
  let l = Limiter.create ~now:(fun () -> 0.) ~rate:10. ~burst:3 () in
  Alcotest.(check (float 1e-9)) "full bucket retries now" 0.
    (Limiter.retry_after l)

(* ---------- job manager (deterministic, workers:0 + step) ---------- *)

let spec_of ?(tools = [ "gprof" ]) reader prog =
  Jobs.
    {
      trace_key = 42L;
      reader;
      prog;
      tools;
      slice = 2_000;
      period = 2_000;
    }

let test_jobs_bounded_queue () =
  let prog, _ = Lazy.force fixture in
  let reader = fresh_reader () in
  let cache = Lru.create ~capacity:(256 * 1024 * 1024) in
  let j = Jobs.create ~workers:0 ~queue_limit:2 ~cache () in
  let id1 =
    match Jobs.submit j (spec_of reader prog) with
    | Ok id -> id
    | Error _ -> Alcotest.fail "submit 1 refused"
  in
  let id2 =
    match Jobs.submit j (spec_of reader prog) with
    | Ok id -> id
    | Error _ -> Alcotest.fail "submit 2 refused"
  in
  (match Jobs.submit j (spec_of reader prog) with
  | Error (`Queue_full depth) -> Alcotest.(check int) "full at bound" 2 depth
  | Ok _ -> Alcotest.fail "third submit must be refused");
  Alcotest.(check bool) "job 1 pending" true (Jobs.status j id1 = Jobs.Pending);
  Alcotest.(check bool) "step 1" true (Jobs.step j);
  Alcotest.(check bool) "step 2" true (Jobs.step j);
  Alcotest.(check bool) "queue dry" false (Jobs.step j);
  (match Jobs.status j id2 with
  | Jobs.Done [ ("gprof", Ok _) ] -> ()
  | _ -> Alcotest.fail "job 2 should be done with an Ok gprof report");
  let s = Jobs.stats j in
  Alcotest.(check int) "submitted" 2 s.Jobs.submitted;
  Alcotest.(check int) "completed" 2 s.Jobs.completed;
  Alcotest.(check int) "rejected" 1 s.Jobs.rejected;
  Alcotest.(check int) "peak depth" 2 s.Jobs.peak_depth;
  Alcotest.(check int) "latency samples" 2 (Array.length s.Jobs.latency);
  Jobs.drain j;
  match Jobs.submit j (spec_of reader prog) with
  | Error (`Queue_full _) -> ()
  | Ok _ -> Alcotest.fail "submit after drain must be refused"

let test_jobs_results_match_direct_replay () =
  let prog, _ = Lazy.force fixture in
  let reader = fresh_reader () in
  let cache = Lru.create ~capacity:(256 * 1024 * 1024) in
  let j = Jobs.create ~workers:0 ~queue_limit:4 ~cache () in
  let tools = Toolset.names in
  let id =
    match Jobs.submit j (spec_of ~tools reader prog) with
    | Ok id -> id
    | Error _ -> Alcotest.fail "submit refused"
  in
  ignore (Jobs.step j);
  let direct =
    Replay.sequential (fresh_reader ())
      (List.map
         (fun name ->
           Result.get_ok (Toolset.job ~prog ~slice:2_000 ~period:2_000 name))
         tools)
  in
  (match Jobs.status j id with
  | Jobs.Done results ->
      List.iter2
        (fun (name, served) (name', direct) ->
          Alcotest.(check string) "tool order" name name';
          match (served, direct) with
          | Ok a, Ok b ->
              Alcotest.(check string) (name ^ " report identical") b a
          | _ -> Alcotest.fail (name ^ ": expected Ok outcomes"))
        results direct
  | _ -> Alcotest.fail "job should be done");
  Jobs.drain j

let test_jobs_cache_hits_on_repeat () =
  let prog, _ = Lazy.force fixture in
  let reader = fresh_reader () in
  let cache = Lru.create ~capacity:(256 * 1024 * 1024) in
  let j = Jobs.create ~workers:0 ~queue_limit:4 ~cache () in
  ignore (Jobs.submit j (spec_of reader prog));
  ignore (Jobs.submit j (spec_of reader prog));
  ignore (Jobs.submit j (spec_of reader prog));
  ignore (Jobs.step j);
  let first = Lru.stats cache in
  Alcotest.(check int) "first pass decodes every chunk"
    (Reader.n_chunks reader) first.Lru.misses;
  ignore (Jobs.step j);
  ignore (Jobs.step j);
  let after = Lru.stats cache in
  Alcotest.(check int) "repeat passes hit every chunk"
    (2 * Reader.n_chunks reader) after.Lru.hits;
  Alcotest.(check int) "no further misses" first.Lru.misses after.Lru.misses;
  Alcotest.(check bool) "hit rate over 0.5" true (Lru.hit_rate after > 0.5);
  Jobs.drain j

let test_jobs_unknown_tool_is_isolated () =
  let prog, _ = Lazy.force fixture in
  let reader = fresh_reader () in
  let cache = Lru.create ~capacity:(256 * 1024 * 1024) in
  let j = Jobs.create ~workers:0 ~queue_limit:4 ~cache () in
  let id =
    Result.get_ok
      (Jobs.submit j (spec_of ~tools:[ "gprof"; "nosuch" ] reader prog))
  in
  ignore (Jobs.step j);
  (match Jobs.status j id with
  | Jobs.Done [ ("gprof", Ok _); ("nosuch", Error _) ] -> ()
  | _ -> Alcotest.fail "gprof must succeed while nosuch fails");
  Alcotest.(check int) "counted as a failed job" 1
    (Jobs.stats j).Jobs.failed_jobs;
  Jobs.drain j

(* ---------- verified-at-most-once chunk reads ---------- *)

let test_verified_bits () =
  let r = fresh_reader () in
  let n = Reader.n_chunks r in
  Alcotest.(check bool) "multi-chunk fixture" true (n > 4);
  (* loading decodes (and verifies) only the last chunk *)
  Alcotest.(check int) "one chunk verified at load" 1 (Reader.verified_chunks r);
  let evs0 = Reader.chunk_events r 0 in
  Alcotest.(check int) "chunk 0 verified" 2 (Reader.verified_chunks r);
  let evs0' = Reader.chunk_events r 0 in
  Alcotest.(check bool) "re-read decodes identically" true (evs0 = evs0');
  Alcotest.(check int) "re-read does not re-verify" 2
    (Reader.verified_chunks r);
  Alcotest.(check int) "crc_check digests the rest" n (Reader.crc_check r);
  Alcotest.(check int) "all verified" n (Reader.verified_chunks r);
  (* chunk-granular reads concatenate to exactly the iteration order *)
  let whole = ref [] in
  Reader.iter r (fun ev -> whole := ev :: !whole);
  let concat =
    List.concat_map
      (fun i -> Array.to_list (Reader.chunk_events r i))
      (List.init n Fun.id)
  in
  Alcotest.(check bool) "chunk reads tile the trace" true
    (List.rev !whole = concat)

let test_chunk_events_detects_corruption () =
  let _, bytes = Lazy.force fixture in
  (* flip one payload byte inside the first chunk (just past the file
     header): the load itself succeeds — only the last chunk decodes — but
     the chunk-granular read must fail its CRC *)
  let b = Bytes.of_string bytes in
  let off = Tq_trace.Writer.header_bytes + 24 in
  Bytes.set b off (Char.chr (Char.code (Bytes.get b off) lxor 0x40));
  let r = Reader.of_string (Bytes.to_string b) in
  (match Reader.chunk_events r 0 with
  | _ -> Alcotest.fail "corrupt chunk must not decode"
  | exception Reader.Format_error _ -> ());
  match Reader.chunk_events r (-1) with
  | _ -> Alcotest.fail "negative index must be refused"
  | exception Invalid_argument _ -> ()

(* ---------- protocol frames ---------- *)

let test_frame_roundtrip () =
  let rd, wr = Unix.pipe () in
  let payloads =
    [ Json.Obj [ ("op", Json.Str "ping") ];
      Json.Obj
        [ ("bytes", Json.Str "\x00\x01\xff binary \n ok");
          ("n", Json.Int 42) ];
      Json.List [ Json.Bool true; Json.Null ] ]
  in
  List.iter (Protocol.write_frame wr) payloads;
  List.iter
    (fun expect ->
      match Protocol.read_frame rd with
      | Some got ->
          Alcotest.(check string) "frame round-trips"
            (Json.to_string expect) (Json.to_string got)
      | None -> Alcotest.fail "unexpected EOF")
    payloads;
  Unix.close wr;
  Alcotest.(check bool) "clean EOF is None" true (Protocol.read_frame rd = None);
  Unix.close rd

let test_frame_oversized_rejected () =
  let rd, wr = Unix.pipe () in
  (* an adversarial length prefix must be refused before any allocation *)
  let hdr = Bytes.create 4 in
  Bytes.set_int32_be hdr 0 0x7fff_ffffl;
  ignore (Unix.write wr hdr 0 4);
  (match Protocol.read_frame rd with
  | _ -> Alcotest.fail "oversized frame accepted"
  | exception Protocol.Frame_error _ -> ());
  Unix.close rd;
  Unix.close wr

let test_trace_id () =
  let id = Protocol.trace_id "hello" in
  Alcotest.(check int) "16 hex digits" 16 (String.length id);
  Alcotest.(check string) "deterministic" id (Protocol.trace_id "hello");
  Alcotest.(check bool) "content-sensitive" true
    (Protocol.trace_id "hello!" <> id)

(* ---------- client/server over a real socket ---------- *)

let tmp_socket () =
  let path = Filename.temp_file "tq_serve" ".sock" in
  Sys.remove path;
  path

let start_server cfg =
  let ready_m = Mutex.create () and ready_c = Condition.create () in
  let ready = ref false in
  let th =
    Thread.create
      (fun () ->
        Server.run ~handle_signals:false
          ~on_ready:(fun () ->
            Mutex.lock ready_m;
            ready := true;
            Condition.signal ready_c;
            Mutex.unlock ready_m)
          cfg)
      ()
  in
  Mutex.lock ready_m;
  while not !ready do
    Condition.wait ready_c ready_m
  done;
  Mutex.unlock ready_m;
  th

let test_socket_roundtrip () =
  let prog, bytes = Lazy.force fixture in
  let socket = tmp_socket () in
  let mdir = Filename.temp_file "tq_serve_mdir" "" in
  Sys.remove mdir;
  Sys.mkdir mdir 0o755;
  let cfg =
    {
      (Server.default ~socket_path:socket) with
      Server.workers = 1;
      cache_bytes = 256 * 1024 * 1024;
      manifest_dir = Some mdir;
      manifest_period_s = 60.;
    }
  in
  let th = start_server cfg in
  let c = Result.get_ok (Client.connect socket) in
  Alcotest.(check bool) "ping" true (Client.ping c = Ok ());
  let id =
    match
      Client.upload ~name:"fixture"
        ~program:(Objfile.encode prog) ~trace:bytes c
    with
    | Ok id -> id
    | Error e -> Alcotest.fail ("upload: " ^ e.Client.reason)
  in
  Alcotest.(check string) "id is the container digest"
    (Protocol.trace_id bytes) id;
  (* second upload of the same bytes is a dedup, not a second store *)
  Alcotest.(check string) "idempotent upload" id
    (Result.get_ok (Client.upload ~trace:bytes c));
  (match Client.trace_info c id with
  | Ok info ->
      let reader = Reader.of_string bytes in
      (match Json.member "events" info with
      | Some (Json.Int n) ->
          Alcotest.(check int) "event count" (Reader.n_events reader) n
      | _ -> Alcotest.fail "trace-info carries no event count")
  | Error e -> Alcotest.fail ("trace-info: " ^ e.Client.reason));
  (* replay through every tool; reports must match a direct replay *)
  let jid =
    match Client.replay ~slice:2_000 ~period:2_000 c id with
    | Ok jid -> jid
    | Error e -> Alcotest.fail ("replay: " ^ e.Client.reason)
  in
  let rep =
    match Client.report ~wait:true c jid with
    | Ok r -> r
    | Error e -> Alcotest.fail ("report: " ^ e.Client.reason)
  in
  Alcotest.(check bool) "job done" true rep.Client.done_;
  Alcotest.(check (list string)) "no failures" []
    (List.map fst rep.Client.failures);
  let direct =
    Replay.sequential (Reader.of_string bytes)
      (List.map
         (fun name ->
           Result.get_ok (Toolset.job ~prog ~slice:2_000 ~period:2_000 name))
         Toolset.names)
  in
  List.iter
    (fun (name, outcome) ->
      match (outcome, List.assoc_opt name rep.Client.reports) with
      | Ok want, Some got ->
          Alcotest.(check string) (name ^ " served = direct") want got
      | _ -> Alcotest.fail (name ^ ": missing served report"))
    direct;
  (* repeat replays of the same trace run hot from the chunk cache (three
     passes total: hit rate 2/3) *)
  let jid2 = Result.get_ok (Client.replay ~slice:2_000 ~period:2_000 c id) in
  ignore (Result.get_ok (Client.report ~wait:true c jid2));
  let jid3 = Result.get_ok (Client.replay ~slice:2_000 ~period:2_000 c id) in
  ignore (Result.get_ok (Client.report ~wait:true c jid3));
  (match Client.stats c with
  | Ok (Json.Obj _ as server) ->
      let cache = Option.get (Json.member "cache" server) in
      (match Json.member "hit_rate" cache with
      | Some (Json.Float rate) ->
          Alcotest.(check bool) "cache hit rate > 0.5 on repeat" true
            (rate > 0.5)
      | _ -> Alcotest.fail "no cache hit_rate in stats");
      (match Json.member "queue" server with
      | Some q ->
          (match Json.member "failed_jobs" q with
          | Some (Json.Int f) -> Alcotest.(check int) "no failed jobs" 0 f
          | _ -> Alcotest.fail "no failed_jobs counter")
      | None -> Alcotest.fail "no queue section")
  | Ok _ | Error _ -> Alcotest.fail "stats refused");
  (* unknown ids get typed not-found refusals *)
  (match Client.trace_info c "0000000000000000" with
  | Error e ->
      Alcotest.(check string) "not-found kind" Protocol.not_found e.Client.kind
  | Ok _ -> Alcotest.fail "unknown trace accepted");
  (* graceful drain: server thread exits, socket gone, manifest valid *)
  Alcotest.(check bool) "shutdown accepted" true (Client.shutdown c = Ok ());
  Client.close c;
  Thread.join th;
  Alcotest.(check bool) "socket removed" false (Sys.file_exists socket);
  let manifest = Tq_obs.Manifest.load (Filename.concat mdir "server.json") in
  (match Tq_obs.Manifest.validate manifest with
  | Ok () -> ()
  | Error msg -> Alcotest.fail ("server manifest invalid: " ^ msg));
  Alcotest.(check bool) "job manifest written" true
    (Sys.file_exists (Filename.concat mdir "job-1.json"))

let test_socket_rate_limit_busy () =
  let prog, bytes = Lazy.force fixture in
  let socket = tmp_socket () in
  let cfg =
    {
      (Server.default ~socket_path:socket) with
      Server.workers = 1;
      rate = 0.001;
      burst = 1;
    }
  in
  let th = start_server cfg in
  let c = Result.get_ok (Client.connect socket) in
  let id =
    Result.get_ok (Client.upload ~program:(Objfile.encode prog) ~trace:bytes c)
  in
  (* the single token admits one replay; the burst's second is refused with
     a typed busy response carrying a retry hint *)
  let _jid = Result.get_ok (Client.replay ~tools:[ "gprof" ] c id) in
  (match Client.replay ~tools:[ "gprof" ] c id with
  | Error e ->
      Alcotest.(check string) "busy kind" Protocol.busy e.Client.kind;
      Alcotest.(check bool) "retry hint present" true
        (e.Client.retry_after_s <> None)
  | Ok _ -> Alcotest.fail "over-budget replay admitted");
  Alcotest.(check bool) "shutdown" true (Client.shutdown c = Ok ());
  Client.close c;
  Thread.join th

let suites =
  [ ( "serve",
      [ Alcotest.test_case "lru: eviction order and accounting" `Quick
          test_lru_eviction_order;
        Alcotest.test_case "lru: oversized entries are not cached" `Quick
          test_lru_oversized_entry;
        Alcotest.test_case "lru: re-adding a resident key touches" `Quick
          test_lru_readd_touches;
        Alcotest.test_case "limiter: burst drains, clock refills, cap holds"
          `Quick test_limiter_burst_and_refill;
        Alcotest.test_case "limiter: full bucket needs no wait" `Quick
          test_limiter_no_wait_when_full;
        Alcotest.test_case "jobs: bounded queue refuses past its limit" `Quick
          test_jobs_bounded_queue;
        Alcotest.test_case "jobs: served results match a direct replay" `Quick
          test_jobs_results_match_direct_replay;
        Alcotest.test_case "jobs: repeat replays hit the chunk cache" `Quick
          test_jobs_cache_hits_on_repeat;
        Alcotest.test_case "jobs: an unknown tool fails alone" `Quick
          test_jobs_unknown_tool_is_isolated;
        Alcotest.test_case "reader: chunks verify at most once" `Quick
          test_verified_bits;
        Alcotest.test_case "reader: chunk reads catch corruption" `Quick
          test_chunk_events_detects_corruption;
        Alcotest.test_case "protocol: frames round-trip binary payloads"
          `Quick test_frame_roundtrip;
        Alcotest.test_case "protocol: oversized frames are refused" `Quick
          test_frame_oversized_rejected;
        Alcotest.test_case "protocol: trace ids are stable digests" `Quick
          test_trace_id;
        Alcotest.test_case "socket: upload/replay/report round-trip" `Quick
          test_socket_roundtrip;
        Alcotest.test_case "socket: rate limiter refuses bursts with busy"
          `Quick test_socket_rate_limit_busy ] ) ]
