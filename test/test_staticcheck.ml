(* The static binary verifier: clean code verifies clean, each seeded defect
   yields its diagnostic class, and the bandwidth estimator ranks loopy
   kernels above straight-line ones. *)

open Tq_vm
module Isa = Tq_isa.Isa
module Builder = Tq_asm.Builder
module Sc = Tq_staticcheck.Staticcheck
module Cfg = Tq_staticcheck.Cfg
module Rcode = Tq_staticcheck.Rcode
module Estimate = Tq_staticcheck.Estimate

let compile src = Tq_rt.Rt.link [ Tq_minic.Driver.compile_unit ~image:"app" src ]

let t0 = Isa.reg_t0
let t1 = Isa.reg_t0 + 1

(* ---------- clean programs verify clean ---------- *)

let loopy_src =
  "int N; int buf[64];\n\
   int fill(int n) { int i; for (i = 0; i < n; i = i + 1) buf[i] = i * 2; \
   return n; }\n\
   int sum2d(int n) { int i; int j; int s; s = 0;\n\
  \  for (i = 0; i < n; i = i + 1) { for (j = 0; j < n; j = j + 1) { if (buf[j] \
   > 8) s = s + buf[j]; else s = s - 1; } }\n\
  \  return s; }\n\
   int main() { N = 8; fill(64); while (1) { if (N > 4) break; } return \
   sum2d(N); }\n"

let test_clean_program () =
  let prog = compile loopy_src in
  Alcotest.(check string)
    "no diagnostics (all images)" ""
    (Sc.render (Sc.check_program prog))

let test_clean_wfs_and_apps () =
  List.iter
    (fun (name, prog) ->
      Alcotest.(check string)
        (name ^ " verifies clean")
        ""
        (Sc.render (Sc.check_program prog)))
    [
      ("wfs tiny", Tq_wfs.Harness.compile Tq_wfs.Scenario.tiny);
      ("wfs default", Tq_wfs.Harness.compile Tq_wfs.Scenario.default);
      ("imgpipe", Tq_apps.Apps.image_pipeline_program ~width:16 ~height:8 ());
      ("chase", Tq_apps.Apps.pointer_chase_program ~nodes:16 ~rounds:2 ());
    ]

(* ---------- CFG structure ---------- *)

let test_cfg_loops () =
  (* two nested counted loops built by the compiler *)
  let prog = compile loopy_src in
  let r = Option.get (Symtab.by_name prog.Program.symtab "sum2d") in
  let cfg = Cfg.build (Rcode.of_routine prog r) in
  Alcotest.(check bool) "has back edges" true (List.length cfg.Cfg.back_edges >= 2);
  let maxd = Array.fold_left max 0 cfg.Cfg.loop_depth in
  Alcotest.(check int) "nest depth 2" 2 maxd;
  Alcotest.(check bool)
    "every block reachable" true
    (Array.for_all Fun.id cfg.Cfg.reachable);
  (* entry dominates everything: idom chains all terminate at block 0 *)
  Array.iter
    (fun (b : Cfg.block) ->
      if b.Cfg.id <> 0 then
        Alcotest.(check bool) "has idom" true (cfg.Cfg.idom.(b.Cfg.id) >= 0))
    cfg.Cfg.blocks

(* ---------- seeded mutations: one defect, one diagnostic class ---------- *)

let mutate prog f =
  let code = Array.copy prog.Program.code in
  f code;
  { prog with Program.code }

let find_in routine prog p =
  let r = Option.get (Symtab.by_name prog.Program.symtab routine) in
  let lo = Program.index_of_addr prog r.Symtab.entry in
  let hi = lo + (r.Symtab.size / Isa.ins_bytes) - 1 in
  let rec go i =
    if i > hi then Alcotest.failf "no matching instruction in %s" routine
    else if p prog.Program.code.(i) then i
    else go (i + 1)
  in
  go lo

let test_mutation_bad_jump () =
  let prog = compile loopy_src in
  let i = find_in "sum2d" prog (function Isa.Jmp _ -> true | _ -> false) in
  let bad =
    mutate prog (fun code ->
        match code.(i) with
        | Isa.Jmp a -> code.(i) <- Isa.Jmp (a + 2) (* misaligned *)
        | _ -> assert false)
  in
  Alcotest.(check bool)
    "clobbered jump target -> bad-jump" true
    (Sc.has_class Sc.Bad_jump (Sc.check_program bad))

let test_mutation_bad_call () =
  let prog = compile loopy_src in
  let i = find_in "main" prog (function Isa.Call _ -> true | _ -> false) in
  let bad =
    mutate prog (fun code ->
        match code.(i) with
        | Isa.Call a -> code.(i) <- Isa.Call (a + Isa.ins_bytes)
        | _ -> assert false)
  in
  Alcotest.(check bool)
    "call into a routine body -> bad-call" true
    (Sc.has_class Sc.Bad_call (Sc.check_program bad))

let test_mutation_dropped_ret () =
  let prog = compile loopy_src in
  let r = Option.get (Symtab.by_name prog.Program.symtab "fill") in
  let last =
    Program.index_of_addr prog r.Symtab.entry + (r.Symtab.size / Isa.ins_bytes) - 1
  in
  (match prog.Program.code.(last) with
  | Isa.Ret -> ()
  | i -> Alcotest.failf "expected trailing ret, got %s" (Isa.to_string i));
  let bad = mutate prog (fun code -> code.(last) <- Isa.Nop) in
  Alcotest.(check bool)
    "dropped final ret -> fall-through" true
    (Sc.has_class Sc.Fall_through (Sc.check_program bad))

(* Crafted assembler units: definite defects the compiler never emits. *)

let unit_of emit =
  let b = Builder.create () in
  emit b;
  Builder.items b

let test_crafted_use_before_def () =
  let items =
    unit_of (fun b ->
        Builder.ins b (Isa.Bin (Isa.Add, t1, t0, Isa.Imm 1));
        Builder.ins b Isa.Ret)
  in
  let d = Sc.check_items ~name:"ubd" items in
  Alcotest.(check bool) "reads temp before def" true
    (Sc.has_class Sc.Use_before_def d)

let test_crafted_stack_imbalance () =
  let items =
    unit_of (fun b ->
        Builder.ins b (Isa.Bin (Isa.Sub, Isa.reg_sp, Isa.reg_sp, Isa.Imm 8));
        Builder.ins b Isa.Ret)
  in
  let d = Sc.check_items ~name:"stk" items in
  Alcotest.(check bool) "ret with sp off by 8" true
    (Sc.has_class Sc.Stack_imbalance d)

let test_crafted_bad_address () =
  let items =
    unit_of (fun b ->
        Builder.ins b (Isa.Li (t0, 8));
        Builder.ins b
          (Isa.Load { width = Isa.W8; dst = t1; base = t0; off = 0; pred = None });
        Builder.ins b Isa.Ret)
  in
  let d = Sc.check_items ~name:"addr" items in
  Alcotest.(check bool) "load from the null page" true
    (Sc.has_class Sc.Bad_address d)

let test_crafted_dynamic_flow () =
  let items =
    unit_of (fun b ->
        Builder.ins b (Isa.Li (t0, 0x40_0000));
        Builder.ins b (Isa.Jr t0))
  in
  let d = Sc.check_items ~name:"dyn" items in
  Alcotest.(check bool) "jr -> dynamic-flow" true
    (Sc.has_class Sc.Dynamic_flow d)

let test_crafted_unreachable () =
  let items =
    unit_of (fun b ->
        Builder.ins b Isa.Ret;
        Builder.ins b Isa.Nop;
        Builder.ins b Isa.Ret)
  in
  let d = Sc.check_items ~name:"unreach" items in
  Alcotest.(check bool) "code after ret" true
    (Sc.has_class Sc.Unreachable_code d)

(* ---------- builder dead-code elimination ---------- *)

let test_builder_drop_dead () =
  let b = Builder.create ~drop_dead:true () in
  Builder.ins b (Isa.Li (t0, 1));
  Builder.ins b Isa.Ret;
  Builder.ins b (Isa.Li (t0, 2)) (* dead *);
  Builder.ins b Isa.Ret (* dead *);
  Alcotest.(check int) "dead tail elided" 2 (Array.length (Builder.items b))

let test_builder_drop_dead_label_revives () =
  let b = Builder.create ~drop_dead:true () in
  let l = Builder.fresh_label b in
  Builder.ins b (Isa.Li (t0, 0));
  Builder.bnz b t0 l;
  Builder.ins b Isa.Ret;
  Builder.ins b (Isa.Li (t0, 9)) (* dead: after ret, before any label *);
  Builder.place b l;
  Builder.ins b (Isa.Li (t0, 1)) (* live again: l is referenced *);
  Builder.ins b Isa.Ret;
  let items = Builder.items b in
  Alcotest.(check int) "one instruction elided" 5 (Array.length items);
  (* the branch must still resolve to the revived code, not the dead slot *)
  let target = Array.to_list items |> List.find_map (function
    | Builder.Bnz_l (_, t) -> Some t
    | _ -> None) in
  Alcotest.(check (option int)) "branch retargeted" (Some 3) target;
  Alcotest.(check string) "elided body verifies clean" ""
    (Sc.render (Sc.check_items ~name:"revive" items))

(* ---------- estimator ---------- *)

let test_estimate_ranks_loops () =
  let prog = compile loopy_src in
  let rows = Estimate.per_kernel prog in
  let find name =
    List.find (fun r -> r.Estimate.routine.Symtab.name = name) rows
  in
  let fill = find "fill" and sum2d = find "sum2d" and main = find "main" in
  Alcotest.(check int) "fill has one loop" 1 fill.Estimate.max_depth;
  Alcotest.(check int) "sum2d nests two" 2 sum2d.Estimate.max_depth;
  Alcotest.(check bool) "depth-2 kernel outweighs depth-1" true
    (Estimate.bytes sum2d > Estimate.bytes fill);
  Alcotest.(check bool) "all kernels estimated" true (List.length rows >= 3);
  Alcotest.(check bool) "main reads something" true (main.Estimate.reads > 0.)

let test_estimate_wfs_heaviest () =
  (* the paper's FFT dominates wfs bandwidth; the static ranking agrees *)
  let rows = Estimate.per_kernel (Tq_wfs.Harness.compile Tq_wfs.Scenario.tiny) in
  let heaviest =
    List.fold_left
      (fun acc r -> if Estimate.bytes r > Estimate.bytes acc then r else acc)
      (List.hd rows) rows
  in
  Alcotest.(check string) "fft1d is the static heavyweight" "fft1d"
    heaviest.Estimate.routine.Symtab.name

let suites =
  [
    ( "staticcheck",
      [
        Alcotest.test_case "clean program verifies clean" `Quick
          test_clean_program;
        Alcotest.test_case "wfs and app programs verify clean" `Quick
          test_clean_wfs_and_apps;
        Alcotest.test_case "cfg: loops, dominators, reachability" `Quick
          test_cfg_loops;
        Alcotest.test_case "mutation: clobbered jump -> bad-jump" `Quick
          test_mutation_bad_jump;
        Alcotest.test_case "mutation: clobbered call -> bad-call" `Quick
          test_mutation_bad_call;
        Alcotest.test_case "mutation: dropped ret -> fall-through" `Quick
          test_mutation_dropped_ret;
        Alcotest.test_case "crafted: use-before-def" `Quick
          test_crafted_use_before_def;
        Alcotest.test_case "crafted: stack imbalance" `Quick
          test_crafted_stack_imbalance;
        Alcotest.test_case "crafted: bad constant address" `Quick
          test_crafted_bad_address;
        Alcotest.test_case "crafted: dynamic flow" `Quick
          test_crafted_dynamic_flow;
        Alcotest.test_case "crafted: unreachable code" `Quick
          test_crafted_unreachable;
        Alcotest.test_case "builder: dead tail elided" `Quick
          test_builder_drop_dead;
        Alcotest.test_case "builder: referenced label revives" `Quick
          test_builder_drop_dead_label_revives;
        Alcotest.test_case "estimate: loop depth ranks kernels" `Quick
          test_estimate_ranks_loops;
        Alcotest.test_case "estimate: wfs heavyweight is fft1d" `Quick
          test_estimate_wfs_heaviest;
      ] );
  ]
