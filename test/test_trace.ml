(* The trace subsystem's contract: the codec is lossless, the container
   round-trips through disk (chunked, seekable), and replaying a recording
   through any analysis tool reproduces the live-instrumented run
   byte-for-byte. *)

open Tq_vm
open Tq_dbi
module Event = Tq_trace.Event
module Writer = Tq_trace.Writer
module Reader = Tq_trace.Reader
module Replay = Tq_trace.Replay
module Probe = Tq_trace.Probe

(* ---------- generators ---------- *)

(* A stream with non-decreasing instruction counts, as the probe emits:
   several events may share an icount (one instruction can produce a routine
   entry, a load and a return). *)
let gen_events =
  let open QCheck.Gen in
  let addr = int_bound 0xFF_FFFF in
  let static = int_range (-1) 40 in
  let shape =
    frequency
      [
        (2, map2 (fun routine sp -> `Entry (routine, sp)) (int_bound 40) addr);
        (2, map (fun sp -> `Ret sp) addr);
        ( 4,
          map3
            (fun s (ea, sp) size -> `Load (s, ea, size, sp))
            static (pair addr addr) (int_bound 64) );
        ( 4,
          map3
            (fun s (ea, sp) size -> `Store (s, ea, size, sp))
            static (pair addr addr) (int_bound 64) );
        ( 1,
          map3
            (fun s (src, dst) (len, sp) -> `Copy (s, src, dst, len, sp))
            static (pair addr addr)
            (pair (int_bound 4096) addr) );
        (1, map2 (fun ea size -> `Prefetch (ea, size)) addr (int_bound 64));
        (2, map2 (fun a n -> `Exec (a, n)) addr (int_range 1 30));
      ]
  in
  list_size (int_range 0 400) (pair (int_bound 64) shape)
  |> map (fun steps ->
         let ic = ref 0 in
         List.map
           (fun (delta, sh) ->
             ic := !ic + delta;
             let icount = !ic in
             match sh with
             | `Entry (routine, sp) -> Event.Rtn_entry { icount; routine; sp }
             | `Ret sp -> Event.Ret { icount; sp }
             | `Load (static, ea, size, sp) ->
                 Event.Load { icount; static; ea; size; sp }
             | `Store (static, ea, size, sp) ->
                 Event.Store { icount; static; ea; size; sp }
             | `Copy (static, src, dst, len, sp) ->
                 Event.Block_copy { icount; static; src; dst; len; sp }
             | `Prefetch (ea, size) -> Event.Prefetch { icount; ea; size }
             | `Exec (addr, n) -> Event.Block_exec { icount; addr; n })
           steps)

let arb_events = QCheck.make ~print:(fun evs ->
    String.concat "; " (List.map (Format.asprintf "%a" Event.pp) evs))
    gen_events

(* ---------- codec ---------- *)

let qcheck_leb_roundtrip =
  QCheck.Test.make ~name:"LEB128 round-trips (unsigned and signed)" ~count:500
    QCheck.(pair (int_bound max_int) int)
    (fun (u, s) ->
      let buf = Buffer.create 16 in
      Tq_util.Leb128.write_u buf u;
      Tq_util.Leb128.write_s buf s;
      let str = Buffer.contents buf in
      let pos = ref 0 in
      let u' = Tq_util.Leb128.read_u str pos in
      let s' = Tq_util.Leb128.read_s str pos in
      u = u' && s = s' && !pos = String.length str)

let qcheck_codec_roundtrip =
  QCheck.Test.make ~name:"event codec: decode o encode = id" ~count:200
    arb_events (fun evs ->
      let buf = Buffer.create 1024 in
      let st = Event.fresh_state () in
      List.iter (Event.encode st buf) evs;
      let s = Buffer.contents buf in
      let st = Event.fresh_state () in
      let pos = ref 0 in
      let out = List.map (fun _ -> Event.decode st s pos) evs in
      out = evs && !pos = String.length s)

let qcheck_file_roundtrip =
  (* tiny chunks force many chunk boundaries (state resets, index entries) *)
  QCheck.Test.make ~name:"trace file: load o write = id across chunks"
    ~count:60 arb_events (fun evs ->
      let path = Filename.temp_file "tq_trace" ".trc" in
      Fun.protect
        ~finally:(fun () -> Sys.remove path)
        (fun () ->
          Writer.with_file ~chunk_bytes:256 path (fun w ->
              List.iter (Writer.emit w) evs);
          let r = Reader.load path in
          let out = ref [] in
          Reader.iter r (fun ev -> out := ev :: !out);
          List.rev !out = evs && Reader.n_events r = List.length evs))

let qcheck_seek =
  QCheck.Test.make ~name:"iter ~from_icount = filter (icount >=)" ~count:60
    QCheck.(pair arb_events (int_bound 0x3FFF))
    (fun (evs, from_icount) ->
      let path = Filename.temp_file "tq_trace" ".trc" in
      Fun.protect
        ~finally:(fun () -> Sys.remove path)
        (fun () ->
          Writer.with_file ~chunk_bytes:128 path (fun w ->
              List.iter (Writer.emit w) evs);
          let r = Reader.load path in
          let out = ref [] in
          Reader.iter ~from_icount r (fun ev -> out := ev :: !out);
          List.rev !out
          = List.filter (fun ev -> Event.icount ev >= from_icount) evs))

let qcheck_iter_tags_partition =
  QCheck.Test.make ~name:"iter_tags partitions the stream by kind" ~count:60
    arb_events (fun evs ->
      let path = Filename.temp_file "tq_trace" ".trc" in
      Fun.protect
        ~finally:(fun () -> Sys.remove path)
        (fun () ->
          Writer.with_file ~chunk_bytes:256 path (fun w ->
              List.iter (Writer.emit w) evs);
          let r = Reader.load path in
          let buckets = Array.make Event.n_kinds [] in
          Reader.iter_tags r
            (Array.init Event.n_kinds (fun tag ->
                 fun ev -> buckets.(tag) <- ev :: buckets.(tag)));
          List.for_all
            (fun kind ->
              let tag = Event.kind_tag kind in
              List.rev buckets.(tag)
              = List.filter (fun ev -> Event.tag ev = tag) evs)
            Event.all_kinds))

let test_iter_tags_arity () =
  let path = Filename.temp_file "tq_trace" ".trc" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Writer.with_file path (fun _ -> ());
      let r = Reader.load path in
      Alcotest.check_raises "wrong sink count"
        (Invalid_argument "Trace.Reader.iter_tags: need one sink per event kind")
        (fun () -> Reader.iter_tags r (Array.make 3 ignore)))

let test_corrupt_trace () =
  let path = Filename.temp_file "tq_trace" ".trc" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out_bin path in
      output_string oc "not a trace file at all";
      close_out oc;
      match Reader.load path with
      | _ -> Alcotest.fail "corrupt file loaded"
      | exception Reader.Format_error _ -> ())

(* ---------- live / replay equivalence ---------- *)

(* Renders mirror the CLI's report sections; what matters here is that each
   covers the tool's full observable state, so string equality means the
   live and replayed analyses agree everywhere. *)
let render_tquad t =
  let kernels = Tq_tquad.Tquad.kernels t in
  let buf = Buffer.create 4096 in
  List.iter
    (fun r ->
      let tot = Tq_tquad.Tquad.totals t r in
      Buffer.add_string buf
        (Printf.sprintf "%s %d-%d %d %d/%d %d/%d %.4f\n" r.Symtab.name
           tot.Tq_tquad.Tquad.first_slice tot.last_slice tot.activity_span
           tot.read_incl tot.read_excl tot.write_incl tot.write_excl
           (Tq_tquad.Tquad.max_rw_bpi t r ~incl:true)))
    kernels;
  Buffer.add_string buf
    (Tq_report.Report.figure t ~metric:Tq_tquad.Tquad.Read_incl ~kernels
       ~title:"read bandwidth" ());
  Buffer.contents buf

let render_quad q =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (Tq_report.Report.quad_table (Tq_quad.Quad.rows q));
  List.iter
    (fun (b : Tq_quad.Quad.binding) ->
      Buffer.add_string buf
        (Printf.sprintf "%s->%s %d %d\n" b.producer.Symtab.name
           b.consumer.Symtab.name b.bytes_incl b.unma))
    (Tq_quad.Quad.bindings q);
  Buffer.contents buf

let render_gprof g =
  Tq_report.Report.flat_profile (Tq_gprofsim.Gprofsim.flat_profile g)

let scen = Tq_wfs.Scenario.tiny
let slice = 2_000
let period = 2_000

(* One live wfs run with all six tools attached at once (each registers its
   own probe on the engine). *)
let live_reports () =
  let m =
    Machine.create
      ~vfs:(Tq_wfs.Harness.make_vfs scen)
      (Tq_wfs.Harness.compile scen)
  in
  let eng = Engine.create m in
  let tq = Tq_tquad.Tquad.attach ~slice_interval:slice eng in
  let q = Tq_quad.Quad.attach eng in
  let g = Tq_gprofsim.Gprofsim.attach ~period eng in
  let mix = Tq_prof.Ins_mix.attach eng in
  let cache = Tq_prof.Cache_sim.attach eng in
  let fp = Tq_prof.Footprint.attach eng in
  Engine.run ~fuel:(Tq_wfs.Harness.fuel scen) eng;
  [
    ("tquad", render_tquad tq);
    ("quad", render_quad q);
    ("gprof", render_gprof g);
    ("mix", Tq_prof.Ins_mix.render mix);
    ("cache", Tq_prof.Cache_sim.render cache);
    ("footprint", Tq_prof.Footprint.render fp);
  ]

let record_trace path =
  let prog = Tq_wfs.Harness.compile scen in
  let m = Machine.create ~vfs:(Tq_wfs.Harness.make_vfs scen) prog in
  let eng = Engine.create m in
  let _events : int =
    Probe.record ~fuel:(Tq_wfs.Harness.fuel scen) eng ~path
  in
  prog

let replay_jobs prog =
  let symtab = prog.Program.symtab in
  [
    Replay.job ~wants:Tq_tquad.Tquad.interest "tquad" (fun () ->
        let t = Tq_tquad.Tquad.create ~slice_interval:slice symtab in
        (Tq_tquad.Tquad.consume t, fun () -> render_tquad t));
    Replay.job ~wants:Tq_quad.Quad.interest "quad" (fun () ->
        let q = Tq_quad.Quad.create symtab in
        (Tq_quad.Quad.consume q, fun () -> render_quad q));
    Replay.job ~wants:Tq_gprofsim.Gprofsim.interest "gprof" (fun () ->
        let g = Tq_gprofsim.Gprofsim.create ~period symtab in
        (Tq_gprofsim.Gprofsim.consume g, fun () -> render_gprof g));
    Replay.job ~wants:Tq_prof.Ins_mix.interest "mix" (fun () ->
        let mix = Tq_prof.Ins_mix.create prog in
        (Tq_prof.Ins_mix.consume mix, fun () -> Tq_prof.Ins_mix.render mix));
    Replay.job ~wants:Tq_prof.Cache_sim.interest "cache" (fun () ->
        let c = Tq_prof.Cache_sim.create symtab in
        (Tq_prof.Cache_sim.consume c, fun () -> Tq_prof.Cache_sim.render c));
    Replay.job ~wants:Tq_prof.Footprint.interest "footprint" (fun () ->
        let f = Tq_prof.Footprint.create prog in
        (Tq_prof.Footprint.consume f, fun () -> Tq_prof.Footprint.render f));
  ]

(* Every job in these equivalence runs must succeed; unwrap its report. *)
let report name = function
  | Ok r -> r
  | Error f -> Alcotest.fail (name ^ " failed: " ^ Replay.failure_message f)

let test_replay_equivalence () =
  let path = Filename.temp_file "tq_wfs" ".trc" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let live = live_reports () in
      let prog = record_trace path in
      let reader = Reader.load path in
      let jobs = replay_jobs prog in
      let seq = Replay.sequential reader jobs in
      let par = Replay.parallel ~domains:2 reader jobs in
      List.iter2
        (fun (name, live_report) (name', replayed) ->
          Alcotest.(check string) ("job name " ^ name) name name';
          Alcotest.(check string)
            ("sequential replay of " ^ name ^ " matches live")
            live_report (report name replayed))
        live seq;
      Alcotest.(check bool) "parallel = sequential" true (par = seq))

(* A tool that raises mid-replay must surface as its own [Error]; every
   other job in the same pass still produces its live-identical report. *)
let test_supervised_replay () =
  let path = Filename.temp_file "tq_wfs" ".trc" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let live = live_reports () in
      let prog = record_trace path in
      let reader = Reader.load path in
      let bomb =
        Replay.job "bomb" (fun () ->
            let seen = ref 0 in
            ( (fun _ ->
                incr seen;
                if !seen = 3 then failwith "synthetic tool crash"),
              fun () -> "unreachable" ))
      in
      let jobs = bomb :: replay_jobs prog in
      let check results =
        (match List.assoc "bomb" results with
        | Error f ->
            Alcotest.(check bool) "failure is the tool's exn" true
              (match f.Replay.exn with
              | Failure msg -> msg = "synthetic tool crash"
              | _ -> false);
            Alcotest.(check bool) "not classified as a trace error" false
              (Replay.is_trace_error f)
        | Ok _ -> Alcotest.fail "raising job reported success");
        List.iter
          (fun (name, live_report) ->
            Alcotest.(check string)
              ("survivor " ^ name ^ " still matches live")
              live_report
              (report name (List.assoc name results)))
          live
      in
      check (Replay.sequential reader jobs);
      check (Replay.parallel ~domains:2 reader jobs);
      (* even with every job sharing one domain's decode pass *)
      check (Replay.parallel ~domains:1 reader jobs))

(* ---------- sharded replay property ---------- *)

(* The sharded pipeline's whole contract is byte-identity with
   {!Replay.sequential} no matter where chunk boundaries fall or how many
   shards each tool is split into.  Exercise it with a real recording (the
   tools need a coherent program, stack discipline and address layout, which
   [gen_events] cannot provide) re-encoded under a randomized chunk size, so
   every iteration puts the shard/seed boundaries at different events. *)

let micro_scen = { Tq_wfs.Scenario.tiny with speakers = 2; chunks = 2 }

(* Record once, lazily; iterations only re-encode. *)
let micro_recording =
  lazy
    (let path = Filename.temp_file "tq_wfs" ".trc" in
     Fun.protect
       ~finally:(fun () -> Sys.remove path)
       (fun () ->
         let prog = Tq_wfs.Harness.compile micro_scen in
         let m =
           Machine.create ~vfs:(Tq_wfs.Harness.make_vfs micro_scen) prog
         in
         let eng = Engine.create m in
         let _events : int =
           Probe.record ~fuel:(Tq_wfs.Harness.fuel micro_scen) eng ~path
         in
         let r = Reader.load path in
         let out = ref [] in
         Reader.iter r (fun ev -> out := ev :: !out);
         (prog, List.rev !out)))

(* [replay_jobs] plus each tool's shard capability — the same render
   functions on both paths, so string equality is full-state equality.
   cache stays order-sensitive (replacement state has no merge) and rides
   the pipeline's ordered stage. *)
let sharded_jobs prog =
  let symtab = prog.Program.symtab in
  [
    Replay.job ~wants:Tq_tquad.Tquad.interest
      ~sharded:
        (Tq_tquad.Tquad.sharded ~slice_interval:slice symtab
           ~render:render_tquad)
      "tquad"
      (fun () ->
        let t = Tq_tquad.Tquad.create ~slice_interval:slice symtab in
        (Tq_tquad.Tquad.consume t, fun () -> render_tquad t));
    Replay.job ~wants:Tq_quad.Quad.interest
      ~sharded:(Tq_quad.Quad.sharded symtab ~render:render_quad)
      "quad"
      (fun () ->
        let q = Tq_quad.Quad.create symtab in
        (Tq_quad.Quad.consume q, fun () -> render_quad q));
    Replay.job ~wants:Tq_gprofsim.Gprofsim.interest
      ~sharded:(Tq_gprofsim.Gprofsim.sharded ~period symtab ~render:render_gprof)
      "gprof"
      (fun () ->
        let g = Tq_gprofsim.Gprofsim.create ~period symtab in
        (Tq_gprofsim.Gprofsim.consume g, fun () -> render_gprof g));
    Replay.job ~wants:Tq_prof.Ins_mix.interest
      ~sharded:(Tq_prof.Ins_mix.sharded prog ~render:Tq_prof.Ins_mix.render)
      "mix"
      (fun () ->
        let mix = Tq_prof.Ins_mix.create prog in
        (Tq_prof.Ins_mix.consume mix, fun () -> Tq_prof.Ins_mix.render mix));
    Replay.job ~wants:Tq_prof.Cache_sim.interest "cache" (fun () ->
        let c = Tq_prof.Cache_sim.create symtab in
        (Tq_prof.Cache_sim.consume c, fun () -> Tq_prof.Cache_sim.render c));
    Replay.job ~wants:Tq_prof.Footprint.interest
      ~sharded:(Tq_prof.Footprint.sharded prog ~render:Tq_prof.Footprint.render)
      "footprint"
      (fun () ->
        let f = Tq_prof.Footprint.create prog in
        (Tq_prof.Footprint.consume f, fun () -> Tq_prof.Footprint.render f));
  ]

(* Outcome lists match when every job agrees by name and payload; failures
   compare by message (backtraces are environment-dependent). *)
let outcomes_equal a b =
  List.length a = List.length b
  && List.for_all2
       (fun (n1, o1) (n2, o2) ->
         n1 = n2
         &&
         match (o1, o2) with
         | Ok r1, Ok r2 -> r1 = r2
         | Error f1, Error f2 ->
             Replay.failure_message f1 = Replay.failure_message f2
         | _ -> false)
       a b

let reencode ~chunk_bytes evs =
  let path = Filename.temp_file "tq_shard" ".trc" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Writer.with_file ~chunk_bytes path (fun w ->
          List.iter (Writer.emit w) evs);
      In_channel.with_open_bin path In_channel.input_all)

let gen_pipeline_shape =
  QCheck.Gen.(
    quad
      (int_range 256 4096) (* chunk_bytes: boundaries land anywhere *)
      (int_range 1 8) (* shards *)
      (int_range 1 3) (* domains (capped by the machine) *)
      (int_range 1 6) (* batch: decode window *))

let arb_pipeline_shape =
  QCheck.make
    ~print:(fun (cb, s, d, b) ->
      Printf.sprintf "chunk_bytes=%d shards=%d domains=%d batch=%d" cb s d b)
    gen_pipeline_shape

let qcheck_sharded_identity =
  QCheck.Test.make
    ~name:"sharded replay = sequential for every tool (random chunks/shards)"
    ~count:12 arb_pipeline_shape
    (fun (chunk_bytes, shards, domains, batch) ->
      let prog, evs = Lazy.force micro_recording in
      let raw = reencode ~chunk_bytes evs in
      let jobs = sharded_jobs prog in
      let seq = Replay.sequential (Reader.of_string raw) jobs in
      let par =
        Replay.parallel ~domains ~shards ~batch (Reader.of_string raw) jobs
      in
      List.for_all (fun (_, o) -> Result.is_ok o) seq
      && outcomes_equal seq par)

(* Same identity under salvage: corrupt the container, load what survives,
   and the pipeline must still agree with the sequential walk of the same
   salvaged reader.  A mutation that defeats salvage entirely must do so on
   both paths ([of_string] raises before any replay starts). *)
let qcheck_sharded_salvage_identity =
  QCheck.Test.make
    ~name:"sharded replay = sequential under salvage of a corrupted trace"
    ~count:16
    (QCheck.pair arb_pipeline_shape QCheck.(int_bound 10_000))
    (fun ((chunk_bytes, shards, domains, batch), seed) ->
      let prog, evs = Lazy.force micro_recording in
      let raw = reencode ~chunk_bytes evs in
      let mutation = Tq_faultgen.Faultgen.random ~seed raw in
      let mutated = Tq_faultgen.Faultgen.apply mutation raw in
      let jobs = sharded_jobs prog in
      match Reader.of_string ~mode:Reader.Salvage mutated with
      | exception Reader.Format_error _ -> (
          match Reader.of_string ~mode:Reader.Salvage mutated with
          | exception Reader.Format_error _ -> true
          | _ -> false)
      | r1 ->
          let r2 = Reader.of_string ~mode:Reader.Salvage mutated in
          outcomes_equal (Replay.sequential r1 jobs)
            (Replay.parallel ~domains ~shards ~batch r2 jobs))

(* ---------- crash safety of the writer ---------- *)

let test_writer_atomic_rename () =
  let dir = Filename.temp_file "tq_dir" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o700;
  let path = Filename.concat dir "out.trc" in
  let tmp = path ^ ".tmp" in
  Fun.protect
    ~finally:(fun () ->
      List.iter (fun f -> try Sys.remove f with Sys_error _ -> ()) [ path; tmp ];
      Sys.rmdir dir)
    (fun () ->
      let w = Writer.create path in
      Writer.emit w (Event.Load { icount = 1; static = 0; ea = 8; size = 4; sp = 0 });
      Alcotest.(check bool) "streams to .tmp while recording" true
        (Sys.file_exists tmp);
      Alcotest.(check bool) "final path absent until close" false
        (Sys.file_exists path);
      Writer.close w;
      Alcotest.(check bool) ".tmp gone after close" false (Sys.file_exists tmp);
      Alcotest.(check bool) "final path appears atomically" true
        (Sys.file_exists path);
      Alcotest.(check int) "renamed container loads" 1
        (Reader.n_events (Reader.load path));
      (* close is idempotent; emit after close is a hard error *)
      Writer.close w;
      Alcotest.check_raises "emit after close"
        (Invalid_argument "Trace.Writer.emit: closed") (fun () ->
          Writer.emit w (Event.Ret { icount = 2; sp = 0 })))

(* ---------- v2 container back-compat ---------- *)

(* Hand-assemble a v2 container (no chunk magic, no CRCs) the way the old
   writer laid it out, so pre-upgrade recordings keep loading. *)
let build_v2 ~chunk_events events =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "TQTRC2\n";
  Buffer.add_int64_le buf 0L;
  let chunks = ref [] in
  let rec split = function
    | [] -> []
    | evs ->
        let rec take n = function
          | x :: tl when n > 0 ->
              let a, b = take (n - 1) tl in
              (x :: a, b)
          | rest -> ([], rest)
        in
        let head, tail = take chunk_events evs in
        head :: split tail
  in
  List.iter
    (fun evs ->
      let first_icount = Event.icount (List.hd evs) in
      let payload = Buffer.create 256 in
      let st = Event.fresh_state ~icount:first_icount () in
      List.iter (Event.encode st payload) evs;
      chunks := (Buffer.length buf, first_icount, List.length evs) :: !chunks;
      Tq_util.Leb128.write_u buf (List.length evs);
      Tq_util.Leb128.write_u buf first_icount;
      Tq_util.Leb128.write_u buf (Buffer.length payload);
      Buffer.add_buffer buf payload)
    (split events);
  let chunks = List.rev !chunks in
  let index_offset = Buffer.length buf in
  Tq_util.Leb128.write_u buf (List.length chunks);
  let prev_off = ref 0 and prev_ic = ref 0 in
  List.iter
    (fun (off, ic, n) ->
      Tq_util.Leb128.write_u buf (off - !prev_off);
      Tq_util.Leb128.write_u buf (ic - !prev_ic);
      Tq_util.Leb128.write_u buf n;
      prev_off := off;
      prev_ic := ic)
    chunks;
  Buffer.add_int64_le buf (Int64.of_int index_offset);
  Buffer.add_string buf "TQTRIX1\n";
  Buffer.contents buf

let qcheck_v2_backcompat =
  QCheck.Test.make ~name:"v2 containers still load (no CRCs, no salvage)"
    ~count:40 arb_events (fun evs ->
      QCheck.assume (evs <> []);
      let raw = build_v2 ~chunk_events:7 evs in
      let r = Reader.of_string raw in
      let out = ref [] in
      Reader.iter r (fun ev -> out := ev :: !out);
      let loads_ok =
        Reader.version r = 2
        && List.rev !out = evs
        && Reader.n_events r = List.length evs
      in
      let salvage_refused =
        match Reader.of_string ~mode:Reader.Salvage raw with
        | _ -> false
        | exception Reader.Format_error _ -> true
      in
      loads_ok && salvage_refused)

let test_v3_is_default () =
  let path = Filename.temp_file "tq_trace" ".trc" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Writer.with_file path (fun w ->
          Writer.emit w (Event.Ret { icount = 5; sp = 0 }));
      let r = Reader.load path in
      Alcotest.(check int) "writer emits v3" 3 (Reader.version r);
      Alcotest.(check bool) "strict load reports no salvage" true
        (Reader.salvage_info r = None))

let test_record_reader_stats () =
  let path = Filename.temp_file "tq_wfs" ".trc" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let _ = record_trace path in
      let r = Reader.load path in
      Alcotest.(check bool) "has events" true (Reader.n_events r > 0);
      Alcotest.(check bool) "chunked" true (Reader.n_chunks r > 1);
      (* the End event's icount is the run's final instruction count *)
      Alcotest.(check bool) "monotone last icount" true
        (Reader.last_icount r > 0);
      let max_ic = ref 0 and n = ref 0 in
      Reader.iter r (fun ev ->
          incr n;
          let ic = Event.icount ev in
          Alcotest.(check bool) "icount never regresses" true (ic >= !max_ic);
          max_ic := ic);
      Alcotest.(check int) "iter covers all events" (Reader.n_events r) !n;
      Alcotest.(check int) "last icount" (Reader.last_icount r) !max_ic)

let test_fingerprint_guard () =
  let path = Filename.temp_file "tq_wfs" ".trc" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let prog = record_trace path in
      let r = Reader.load path in
      Alcotest.(check bool) "recorder stamped a fingerprint" true
        (Reader.fingerprint r <> 0L);
      Alcotest.(check bool) "stamp is the program's fingerprint" true
        (Reader.fingerprint r = Program.fingerprint prog);
      (match Replay.check_program r prog with
      | Ok () -> ()
      | Error msg -> Alcotest.fail msg);
      (* same sources, different scenario constants -> different image *)
      let other = Tq_wfs.Harness.compile Tq_wfs.Scenario.default in
      (match Replay.check_program r other with
      | Error _ -> ()
      | Ok () -> Alcotest.fail "trace accepted against the wrong program");
      (* a trace whose recorder did not know the program is accepted *)
      let anon = Filename.temp_file "tq_anon" ".trc" in
      Fun.protect
        ~finally:(fun () -> Sys.remove anon)
        (fun () ->
          Writer.with_file anon (fun _ -> ());
          let r2 = Reader.load anon in
          Alcotest.(check bool) "unknown stamp is 0" true
            (Reader.fingerprint r2 = 0L);
          match Replay.check_program r2 prog with
          | Ok () -> ()
          | Error msg -> Alcotest.fail msg))

let suites =
  [
    ( "trace",
      [
        QCheck_alcotest.to_alcotest qcheck_leb_roundtrip;
        QCheck_alcotest.to_alcotest qcheck_codec_roundtrip;
        QCheck_alcotest.to_alcotest qcheck_file_roundtrip;
        QCheck_alcotest.to_alcotest qcheck_seek;
        QCheck_alcotest.to_alcotest qcheck_iter_tags_partition;
        Alcotest.test_case "iter_tags arity check" `Quick test_iter_tags_arity;
        Alcotest.test_case "corrupt file rejected" `Quick test_corrupt_trace;
        Alcotest.test_case "record: reader stats sane" `Quick
          test_record_reader_stats;
        Alcotest.test_case "wfs: replay = live for all six tools" `Quick
          test_replay_equivalence;
        Alcotest.test_case "supervised replay isolates a raising tool" `Quick
          test_supervised_replay;
        QCheck_alcotest.to_alcotest qcheck_sharded_identity;
        QCheck_alcotest.to_alcotest qcheck_sharded_salvage_identity;
        Alcotest.test_case "writer streams to .tmp, renames on close" `Quick
          test_writer_atomic_rename;
        QCheck_alcotest.to_alcotest qcheck_v2_backcompat;
        Alcotest.test_case "new recordings are v3" `Quick test_v3_is_default;
        Alcotest.test_case "fingerprint binds trace to program" `Quick
          test_fingerprint_guard;
      ] );
  ]
