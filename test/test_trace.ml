(* The trace subsystem's contract: the codec is lossless, the container
   round-trips through disk (chunked, seekable), and replaying a recording
   through any analysis tool reproduces the live-instrumented run
   byte-for-byte. *)

open Tq_vm
open Tq_dbi
module Event = Tq_trace.Event
module Writer = Tq_trace.Writer
module Reader = Tq_trace.Reader
module Replay = Tq_trace.Replay
module Probe = Tq_trace.Probe

(* ---------- generators ---------- *)

(* A stream with non-decreasing instruction counts, as the probe emits:
   several events may share an icount (one instruction can produce a routine
   entry, a load and a return). *)
let gen_events =
  let open QCheck.Gen in
  let addr = int_bound 0xFF_FFFF in
  let static = int_range (-1) 40 in
  let shape =
    frequency
      [
        (2, map2 (fun routine sp -> `Entry (routine, sp)) (int_bound 40) addr);
        (2, map (fun sp -> `Ret sp) addr);
        ( 4,
          map3
            (fun s (ea, sp) size -> `Load (s, ea, size, sp))
            static (pair addr addr) (int_bound 64) );
        ( 4,
          map3
            (fun s (ea, sp) size -> `Store (s, ea, size, sp))
            static (pair addr addr) (int_bound 64) );
        ( 1,
          map3
            (fun s (src, dst) (len, sp) -> `Copy (s, src, dst, len, sp))
            static (pair addr addr)
            (pair (int_bound 4096) addr) );
        (1, map2 (fun ea size -> `Prefetch (ea, size)) addr (int_bound 64));
        (2, map2 (fun a n -> `Exec (a, n)) addr (int_range 1 30));
      ]
  in
  list_size (int_range 0 400) (pair (int_bound 64) shape)
  |> map (fun steps ->
         let ic = ref 0 in
         List.map
           (fun (delta, sh) ->
             ic := !ic + delta;
             let icount = !ic in
             match sh with
             | `Entry (routine, sp) -> Event.Rtn_entry { icount; routine; sp }
             | `Ret sp -> Event.Ret { icount; sp }
             | `Load (static, ea, size, sp) ->
                 Event.Load { icount; static; ea; size; sp }
             | `Store (static, ea, size, sp) ->
                 Event.Store { icount; static; ea; size; sp }
             | `Copy (static, src, dst, len, sp) ->
                 Event.Block_copy { icount; static; src; dst; len; sp }
             | `Prefetch (ea, size) -> Event.Prefetch { icount; ea; size }
             | `Exec (addr, n) -> Event.Block_exec { icount; addr; n })
           steps)

let arb_events = QCheck.make ~print:(fun evs ->
    String.concat "; " (List.map (Format.asprintf "%a" Event.pp) evs))
    gen_events

(* ---------- codec ---------- *)

let qcheck_leb_roundtrip =
  QCheck.Test.make ~name:"LEB128 round-trips (unsigned and signed)" ~count:500
    QCheck.(pair (int_bound max_int) int)
    (fun (u, s) ->
      let buf = Buffer.create 16 in
      Tq_util.Leb128.write_u buf u;
      Tq_util.Leb128.write_s buf s;
      let str = Buffer.contents buf in
      let pos = ref 0 in
      let u' = Tq_util.Leb128.read_u str pos in
      let s' = Tq_util.Leb128.read_s str pos in
      u = u' && s = s' && !pos = String.length str)

let qcheck_codec_roundtrip =
  QCheck.Test.make ~name:"event codec: decode o encode = id" ~count:200
    arb_events (fun evs ->
      let buf = Buffer.create 1024 in
      let st = Event.fresh_state () in
      List.iter (Event.encode st buf) evs;
      let s = Buffer.contents buf in
      let st = Event.fresh_state () in
      let pos = ref 0 in
      let out = List.map (fun _ -> Event.decode st s pos) evs in
      out = evs && !pos = String.length s)

let qcheck_file_roundtrip =
  (* tiny chunks force many chunk boundaries (state resets, index entries) *)
  QCheck.Test.make ~name:"trace file: load o write = id across chunks"
    ~count:60 arb_events (fun evs ->
      let path = Filename.temp_file "tq_trace" ".trc" in
      Fun.protect
        ~finally:(fun () -> Sys.remove path)
        (fun () ->
          Writer.with_file ~chunk_bytes:256 path (fun w ->
              List.iter (Writer.emit w) evs);
          let r = Reader.load path in
          let out = ref [] in
          Reader.iter r (fun ev -> out := ev :: !out);
          List.rev !out = evs && Reader.n_events r = List.length evs))

let qcheck_seek =
  QCheck.Test.make ~name:"iter ~from_icount = filter (icount >=)" ~count:60
    QCheck.(pair arb_events (int_bound 0x3FFF))
    (fun (evs, from_icount) ->
      let path = Filename.temp_file "tq_trace" ".trc" in
      Fun.protect
        ~finally:(fun () -> Sys.remove path)
        (fun () ->
          Writer.with_file ~chunk_bytes:128 path (fun w ->
              List.iter (Writer.emit w) evs);
          let r = Reader.load path in
          let out = ref [] in
          Reader.iter ~from_icount r (fun ev -> out := ev :: !out);
          List.rev !out
          = List.filter (fun ev -> Event.icount ev >= from_icount) evs))

let qcheck_iter_tags_partition =
  QCheck.Test.make ~name:"iter_tags partitions the stream by kind" ~count:60
    arb_events (fun evs ->
      let path = Filename.temp_file "tq_trace" ".trc" in
      Fun.protect
        ~finally:(fun () -> Sys.remove path)
        (fun () ->
          Writer.with_file ~chunk_bytes:256 path (fun w ->
              List.iter (Writer.emit w) evs);
          let r = Reader.load path in
          let buckets = Array.make Event.n_kinds [] in
          Reader.iter_tags r
            (Array.init Event.n_kinds (fun tag ->
                 fun ev -> buckets.(tag) <- ev :: buckets.(tag)));
          List.for_all
            (fun kind ->
              let tag = Event.kind_tag kind in
              List.rev buckets.(tag)
              = List.filter (fun ev -> Event.tag ev = tag) evs)
            Event.all_kinds))

let test_iter_tags_arity () =
  let path = Filename.temp_file "tq_trace" ".trc" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Writer.with_file path (fun _ -> ());
      let r = Reader.load path in
      Alcotest.check_raises "wrong sink count"
        (Invalid_argument "Trace.Reader.iter_tags: need one sink per event kind")
        (fun () -> Reader.iter_tags r (Array.make 3 ignore)))

let test_corrupt_trace () =
  let path = Filename.temp_file "tq_trace" ".trc" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out_bin path in
      output_string oc "not a trace file at all";
      close_out oc;
      match Reader.load path with
      | _ -> Alcotest.fail "corrupt file loaded"
      | exception Reader.Format_error _ -> ())

(* ---------- live / replay equivalence ---------- *)

(* Renders mirror the CLI's report sections; what matters here is that each
   covers the tool's full observable state, so string equality means the
   live and replayed analyses agree everywhere. *)
let render_tquad t =
  let kernels = Tq_tquad.Tquad.kernels t in
  let buf = Buffer.create 4096 in
  List.iter
    (fun r ->
      let tot = Tq_tquad.Tquad.totals t r in
      Buffer.add_string buf
        (Printf.sprintf "%s %d-%d %d %d/%d %d/%d %.4f\n" r.Symtab.name
           tot.Tq_tquad.Tquad.first_slice tot.last_slice tot.activity_span
           tot.read_incl tot.read_excl tot.write_incl tot.write_excl
           (Tq_tquad.Tquad.max_rw_bpi t r ~incl:true)))
    kernels;
  Buffer.add_string buf
    (Tq_report.Report.figure t ~metric:Tq_tquad.Tquad.Read_incl ~kernels
       ~title:"read bandwidth" ());
  Buffer.contents buf

let render_quad q =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (Tq_report.Report.quad_table (Tq_quad.Quad.rows q));
  List.iter
    (fun (b : Tq_quad.Quad.binding) ->
      Buffer.add_string buf
        (Printf.sprintf "%s->%s %d %d\n" b.producer.Symtab.name
           b.consumer.Symtab.name b.bytes_incl b.unma))
    (Tq_quad.Quad.bindings q);
  Buffer.contents buf

let render_gprof g =
  Tq_report.Report.flat_profile (Tq_gprofsim.Gprofsim.flat_profile g)

let scen = Tq_wfs.Scenario.tiny
let slice = 2_000
let period = 2_000

(* One live wfs run with all six tools attached at once (each registers its
   own probe on the engine). *)
let live_reports () =
  let m =
    Machine.create
      ~vfs:(Tq_wfs.Harness.make_vfs scen)
      (Tq_wfs.Harness.compile scen)
  in
  let eng = Engine.create m in
  let tq = Tq_tquad.Tquad.attach ~slice_interval:slice eng in
  let q = Tq_quad.Quad.attach eng in
  let g = Tq_gprofsim.Gprofsim.attach ~period eng in
  let mix = Tq_prof.Ins_mix.attach eng in
  let cache = Tq_prof.Cache_sim.attach eng in
  let fp = Tq_prof.Footprint.attach eng in
  Engine.run ~fuel:(Tq_wfs.Harness.fuel scen) eng;
  [
    ("tquad", render_tquad tq);
    ("quad", render_quad q);
    ("gprof", render_gprof g);
    ("mix", Tq_prof.Ins_mix.render mix);
    ("cache", Tq_prof.Cache_sim.render cache);
    ("footprint", Tq_prof.Footprint.render fp);
  ]

let record_trace path =
  let prog = Tq_wfs.Harness.compile scen in
  let m = Machine.create ~vfs:(Tq_wfs.Harness.make_vfs scen) prog in
  let eng = Engine.create m in
  let _events : int =
    Probe.record ~fuel:(Tq_wfs.Harness.fuel scen) eng ~path
  in
  prog

let replay_jobs prog =
  let symtab = prog.Program.symtab in
  [
    Replay.job ~wants:Tq_tquad.Tquad.interest "tquad" (fun () ->
        let t = Tq_tquad.Tquad.create ~slice_interval:slice symtab in
        (Tq_tquad.Tquad.consume t, fun () -> render_tquad t));
    Replay.job ~wants:Tq_quad.Quad.interest "quad" (fun () ->
        let q = Tq_quad.Quad.create symtab in
        (Tq_quad.Quad.consume q, fun () -> render_quad q));
    Replay.job ~wants:Tq_gprofsim.Gprofsim.interest "gprof" (fun () ->
        let g = Tq_gprofsim.Gprofsim.create ~period symtab in
        (Tq_gprofsim.Gprofsim.consume g, fun () -> render_gprof g));
    Replay.job ~wants:Tq_prof.Ins_mix.interest "mix" (fun () ->
        let mix = Tq_prof.Ins_mix.create prog in
        (Tq_prof.Ins_mix.consume mix, fun () -> Tq_prof.Ins_mix.render mix));
    Replay.job ~wants:Tq_prof.Cache_sim.interest "cache" (fun () ->
        let c = Tq_prof.Cache_sim.create symtab in
        (Tq_prof.Cache_sim.consume c, fun () -> Tq_prof.Cache_sim.render c));
    Replay.job ~wants:Tq_prof.Footprint.interest "footprint" (fun () ->
        let f = Tq_prof.Footprint.create prog in
        (Tq_prof.Footprint.consume f, fun () -> Tq_prof.Footprint.render f));
  ]

let test_replay_equivalence () =
  let path = Filename.temp_file "tq_wfs" ".trc" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let live = live_reports () in
      let prog = record_trace path in
      let reader = Reader.load path in
      let jobs = replay_jobs prog in
      let seq = Replay.sequential reader jobs in
      let par = Replay.parallel ~domains:2 reader jobs in
      List.iter2
        (fun (name, live_report) (name', replayed) ->
          Alcotest.(check string) ("job name " ^ name) name name';
          Alcotest.(check string)
            ("sequential replay of " ^ name ^ " matches live")
            live_report replayed)
        live seq;
      Alcotest.(check bool) "parallel = sequential" true (par = seq))

let test_record_reader_stats () =
  let path = Filename.temp_file "tq_wfs" ".trc" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let _ = record_trace path in
      let r = Reader.load path in
      Alcotest.(check bool) "has events" true (Reader.n_events r > 0);
      Alcotest.(check bool) "chunked" true (Reader.n_chunks r > 1);
      (* the End event's icount is the run's final instruction count *)
      Alcotest.(check bool) "monotone last icount" true
        (Reader.last_icount r > 0);
      let max_ic = ref 0 and n = ref 0 in
      Reader.iter r (fun ev ->
          incr n;
          let ic = Event.icount ev in
          Alcotest.(check bool) "icount never regresses" true (ic >= !max_ic);
          max_ic := ic);
      Alcotest.(check int) "iter covers all events" (Reader.n_events r) !n;
      Alcotest.(check int) "last icount" (Reader.last_icount r) !max_ic)

let test_fingerprint_guard () =
  let path = Filename.temp_file "tq_wfs" ".trc" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let prog = record_trace path in
      let r = Reader.load path in
      Alcotest.(check bool) "recorder stamped a fingerprint" true
        (Reader.fingerprint r <> 0L);
      Alcotest.(check bool) "stamp is the program's fingerprint" true
        (Reader.fingerprint r = Program.fingerprint prog);
      (match Replay.check_program r prog with
      | Ok () -> ()
      | Error msg -> Alcotest.fail msg);
      (* same sources, different scenario constants -> different image *)
      let other = Tq_wfs.Harness.compile Tq_wfs.Scenario.default in
      (match Replay.check_program r other with
      | Error _ -> ()
      | Ok () -> Alcotest.fail "trace accepted against the wrong program");
      (* a trace whose recorder did not know the program is accepted *)
      let anon = Filename.temp_file "tq_anon" ".trc" in
      Fun.protect
        ~finally:(fun () -> Sys.remove anon)
        (fun () ->
          Writer.with_file anon (fun _ -> ());
          let r2 = Reader.load anon in
          Alcotest.(check bool) "unknown stamp is 0" true
            (Reader.fingerprint r2 = 0L);
          match Replay.check_program r2 prog with
          | Ok () -> ()
          | Error msg -> Alcotest.fail msg))

let suites =
  [
    ( "trace",
      [
        QCheck_alcotest.to_alcotest qcheck_leb_roundtrip;
        QCheck_alcotest.to_alcotest qcheck_codec_roundtrip;
        QCheck_alcotest.to_alcotest qcheck_file_roundtrip;
        QCheck_alcotest.to_alcotest qcheck_seek;
        QCheck_alcotest.to_alcotest qcheck_iter_tags_partition;
        Alcotest.test_case "iter_tags arity check" `Quick test_iter_tags_arity;
        Alcotest.test_case "corrupt file rejected" `Quick test_corrupt_trace;
        Alcotest.test_case "record: reader stats sane" `Quick
          test_record_reader_stats;
        Alcotest.test_case "wfs: replay = live for all six tools" `Quick
          test_replay_equivalence;
        Alcotest.test_case "fingerprint binds trace to program" `Quick
          test_fingerprint_guard;
      ] );
  ]
