open Tq_util

let test_dyn_array_basic () =
  let a = Dyn_array.create ~dummy:0 () in
  Alcotest.(check int) "empty length" 0 (Dyn_array.length a);
  for i = 0 to 99 do
    Dyn_array.push a (i * i)
  done;
  Alcotest.(check int) "length" 100 (Dyn_array.length a);
  Alcotest.(check int) "get 7" 49 (Dyn_array.get a 7);
  Dyn_array.set a 7 (-1);
  Alcotest.(check int) "set/get" (-1) (Dyn_array.get a 7);
  Alcotest.(check int) "get_or in" 81 (Dyn_array.get_or a 9 123);
  Alcotest.(check int) "get_or out" 123 (Dyn_array.get_or a 100 123);
  Alcotest.check Alcotest.(option int) "last" (Some (99 * 99)) (Dyn_array.last a)

let test_dyn_array_bounds () =
  let a = Dyn_array.create ~dummy:0 () in
  Dyn_array.push a 1;
  Alcotest.check_raises "get oob"
    (Invalid_argument "Dyn_array: index 1 out of bounds [0,1)") (fun () ->
      ignore (Dyn_array.get a 1));
  Alcotest.check_raises "get negative"
    (Invalid_argument "Dyn_array: index -1 out of bounds [0,1)") (fun () ->
      ignore (Dyn_array.get a (-1)))

let test_dyn_array_ensure_add_at () =
  let a = Dyn_array.create ~dummy:0 () in
  Dyn_array.ensure a 5;
  Alcotest.(check int) "ensure length" 5 (Dyn_array.length a);
  Alcotest.(check int) "dummy filled" 0 (Dyn_array.get a 4);
  Dyn_array.add_at ( + ) a 10 7;
  Alcotest.(check int) "add_at extends" 11 (Dyn_array.length a);
  Alcotest.(check int) "add_at value" 7 (Dyn_array.get a 10);
  Dyn_array.add_at ( + ) a 10 3;
  Alcotest.(check int) "add_at accumulates" 10 (Dyn_array.get a 10)

let test_dyn_array_fold_iter () =
  let a = Dyn_array.create ~dummy:0 () in
  List.iter (Dyn_array.push a) [ 1; 2; 3; 4 ];
  Alcotest.(check int) "fold sum" 10 (Dyn_array.fold ( + ) 0 a);
  Alcotest.(check (list int)) "to_list" [ 1; 2; 3; 4 ] (Dyn_array.to_list a);
  let seen = ref [] in
  Dyn_array.iteri (fun i x -> seen := (i, x) :: !seen) a;
  Alcotest.(check int) "iteri count" 4 (List.length !seen);
  Dyn_array.clear a;
  Alcotest.(check int) "clear" 0 (Dyn_array.length a)

let qcheck_dyn_array_matches_list =
  QCheck.Test.make ~name:"dyn_array push/get agrees with list"
    ~count:200
    QCheck.(list small_int)
    (fun xs ->
      let a = Dyn_array.create ~dummy:min_int () in
      List.iter (Dyn_array.push a) xs;
      Dyn_array.to_list a = xs && Dyn_array.length a = List.length xs)

let test_bitset_basic () =
  let s = Paged_bitset.create () in
  Alcotest.(check int) "empty" 0 (Paged_bitset.cardinal s);
  Paged_bitset.add s 0;
  Paged_bitset.add s 63;
  Paged_bitset.add s 64;
  Paged_bitset.add s 1_000_000_007;
  Paged_bitset.add s 63 (* duplicate *);
  Alcotest.(check int) "cardinal" 4 (Paged_bitset.cardinal s);
  Alcotest.(check bool) "mem 63" true (Paged_bitset.mem s 63);
  Alcotest.(check bool) "mem big" true (Paged_bitset.mem s 1_000_000_007);
  Alcotest.(check bool) "not mem" false (Paged_bitset.mem s 62);
  Alcotest.(check bool) "negative not mem" false (Paged_bitset.mem s (-5))

let test_bitset_range_iter () =
  let s = Paged_bitset.create () in
  Paged_bitset.add_range s 100 50;
  Alcotest.(check int) "range cardinal" 50 (Paged_bitset.cardinal s);
  let acc = ref [] in
  Paged_bitset.iter (fun x -> acc := x :: !acc) s;
  let xs = List.rev !acc in
  Alcotest.(check int) "iter count" 50 (List.length xs);
  Alcotest.(check (list int)) "sorted ascending" (List.init 50 (fun i -> 100 + i)) xs

let test_bitset_sparse_pages () =
  let s = Paged_bitset.create () in
  (* Stack-like high addresses and low data addresses must not blow up. *)
  Paged_bitset.add s 0x7f00_0000_0000;
  Paged_bitset.add s 0x1000_0000;
  Alcotest.(check int) "two pages" 2 (Paged_bitset.page_count s);
  Paged_bitset.clear s;
  Alcotest.(check int) "cleared" 0 (Paged_bitset.cardinal s);
  Alcotest.(check bool) "cleared mem" false (Paged_bitset.mem s 0x1000_0000)

let qcheck_bitset_matches_set =
  QCheck.Test.make ~name:"paged_bitset agrees with Set on adds and mems"
    ~count:200
    QCheck.(list (int_bound 200_000))
    (fun xs ->
      let s = Paged_bitset.create () in
      let module IS = Set.Make (Int) in
      let ref_set = List.fold_left (fun acc x -> IS.add x acc) IS.empty xs in
      List.iter (Paged_bitset.add s) xs;
      Paged_bitset.cardinal s = IS.cardinal ref_set
      && List.for_all (fun x -> Paged_bitset.mem s x) xs
      && (not (Paged_bitset.mem s 200_001)))

let feq = Alcotest.float 1e-9

let test_stats_basic () =
  let xs = [| 1.; 2.; 3.; 4. |] in
  Alcotest.check feq "mean" 2.5 (Stats.mean xs);
  Alcotest.check feq "variance" 1.25 (Stats.variance xs);
  Alcotest.check feq "sum" 10. (Stats.sum xs);
  let lo, hi = Stats.min_max xs in
  Alcotest.check feq "min" 1. lo;
  Alcotest.check feq "max" 4. hi;
  Alcotest.check feq "mean empty" 0. (Stats.mean [||])

let test_stats_percentile () =
  let xs = [| 10.; 20.; 30.; 40.; 50. |] in
  Alcotest.check feq "p0" 10. (Stats.percentile xs 0.);
  Alcotest.check feq "p50" 30. (Stats.percentile xs 50.);
  Alcotest.check feq "p100" 50. (Stats.percentile xs 100.);
  Alcotest.check feq "p25" 20. (Stats.percentile xs 25.)

let test_stats_running () =
  let r = Stats.running_create () in
  List.iter (Stats.running_add r) [ 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. ];
  Alcotest.check feq "running mean" 5. (Stats.running_mean r);
  Alcotest.check feq "running stddev" 2. (Stats.running_stddev r);
  Alcotest.(check int) "running count" 8 (Stats.running_count r);
  Alcotest.check feq "running min" 2. (Stats.running_min r);
  Alcotest.check feq "running max" 9. (Stats.running_max r)

let qcheck_running_matches_batch =
  QCheck.Test.make ~name:"running stats match batch stats" ~count:100
    QCheck.(list_of_size Gen.(int_range 1 50) (float_bound_exclusive 1000.))
    (fun xs ->
      let arr = Array.of_list xs in
      let r = Stats.running_create () in
      Array.iter (Stats.running_add r) arr;
      let close a b = Float.abs (a -. b) < 1e-6 *. (1. +. Float.abs a) in
      close (Stats.running_mean r) (Stats.mean arr)
      && close (Stats.running_stddev r) (Stats.stddev arr))

let test_text_table () =
  let t = Text_table.create ~header:[ "kernel"; "%time" ] in
  Text_table.set_aligns t [ Text_table.Left; Text_table.Right ];
  Text_table.add_row t [ "wav_store"; "31.91" ];
  Text_table.add_row t [ "fft1d"; "28.23" ];
  let s = Text_table.render t in
  Alcotest.(check bool) "contains kernel" true
    (Astring_contains.contains s "wav_store");
  Alcotest.(check bool) "right aligned" true
    (Astring_contains.contains s "| 31.91 |")

let test_text_table_arity () =
  let t = Text_table.create ~header:[ "a"; "b" ] in
  Alcotest.check_raises "arity"
    (Invalid_argument "Text_table.add_row: expected 2 cells, got 1") (fun () ->
      Text_table.add_row t [ "x" ])

let test_cells () =
  Alcotest.(check string) "int_cell" "1,270,684" (Text_table.int_cell 1270684);
  Alcotest.(check string) "int_cell small" "42" (Text_table.int_cell 42);
  Alcotest.(check string) "int_cell neg" "-1,000" (Text_table.int_cell (-1000));
  Alcotest.(check string) "float_cell" "2.7244" (Text_table.float_cell 2.7244);
  Alcotest.(check string) "pct_cell" "31.91" (Text_table.pct_cell 31.911)

let test_csv () =
  Alcotest.(check string) "plain" "a,b" (Csv_out.row [ "a"; "b" ]);
  Alcotest.(check string) "quoted comma" "\"a,b\",c"
    (Csv_out.row [ "a,b"; "c" ]);
  Alcotest.(check string) "quoted quote" "\"a\"\"b\"" (Csv_out.row [ "a\"b" ]);
  Alcotest.(check string) "to_string" "x,y\n1,2\n"
    (Csv_out.to_string [ [ "x"; "y" ]; [ "1"; "2" ] ])

let test_ascii_chart () =
  let s =
    Ascii_chart.strip_chart ~width:10 ~title:"t" ~unit_label:"B/ins"
      [ ("fft1d", [| 0.; 1.; 2.; 0. |]); ("wav_store", [| 0.; 0.; 0.; 9. |]) ]
  in
  Alcotest.(check bool) "has series name" true
    (Astring_contains.contains s "fft1d");
  Alcotest.(check bool) "has peak" true
    (Astring_contains.contains s "peak 9.0000");
  Alcotest.check_raises "length mismatch rejected"
    (Invalid_argument
       "Ascii_chart.strip_chart: series bad has length 2, expected 4")
    (fun () ->
      ignore
        (Ascii_chart.strip_chart ~title:"t" ~unit_label:"u"
           [ ("ok", [| 0.; 0.; 0.; 0. |]); ("bad", [| 1.; 2. |]) ]))

let test_ascii_bar () =
  let s = Ascii_chart.bar_chart ~title:"phases" [ ("a", 1.); ("b", 2.) ] in
  Alcotest.(check bool) "bar has label" true (Astring_contains.contains s "a")

(* ---------- crc32 ---------- *)

let test_crc32_vectors () =
  (* the IEEE reference vectors every CRC-32 implementation must hit *)
  let check name want s =
    Alcotest.(check int) name want (Crc32.digest s)
  in
  check "empty" 0 "";
  check "check value" 0xCBF43926 "123456789";
  check "single byte" 0xE8B7BE43 "a";
  check "ascii" 0x414FA339 "The quick brown fox jumps over the lazy dog"

let test_crc32_compose () =
  let s = "The quick brown fox jumps over the lazy dog" in
  let whole = Crc32.digest s in
  (* feeding the string in arbitrary splits through [~crc] must agree *)
  for cut = 0 to String.length s do
    let c = Crc32.digest (String.sub s 0 cut) in
    let c = Crc32.digest ~crc:c (String.sub s cut (String.length s - cut)) in
    Alcotest.(check int) (Printf.sprintf "split at %d" cut) whole c
  done;
  (* slice digest = digest of the substring *)
  Alcotest.(check int) "pos/len slice" (Crc32.digest "quick")
    (Crc32.digest ~pos:4 ~len:5 s);
  Alcotest.check_raises "slice out of bounds"
    (Invalid_argument "Crc32.digest: slice out of bounds") (fun () ->
      ignore (Crc32.digest ~pos:4 ~len:String.(length s) s))

let qcheck_crc32_detects_bitflips =
  QCheck.Test.make ~name:"crc32 detects any single bit flip" ~count:200
    QCheck.(pair (string_of_size Gen.(int_range 1 64)) (pair small_nat small_nat))
    (fun (s, (byte, bit)) ->
      let byte = byte mod String.length s and bit = bit mod 8 in
      let b = Bytes.of_string s in
      Bytes.set b byte (Char.chr (Char.code (Bytes.get b byte) lxor (1 lsl bit)));
      Crc32.digest (Bytes.to_string b) <> Crc32.digest s)

let suites =
  [
    ( "util.dyn_array",
      [
        Alcotest.test_case "basic" `Quick test_dyn_array_basic;
        Alcotest.test_case "bounds" `Quick test_dyn_array_bounds;
        Alcotest.test_case "ensure/add_at" `Quick test_dyn_array_ensure_add_at;
        Alcotest.test_case "fold/iter" `Quick test_dyn_array_fold_iter;
        QCheck_alcotest.to_alcotest qcheck_dyn_array_matches_list;
      ] );
    ( "util.paged_bitset",
      [
        Alcotest.test_case "basic" `Quick test_bitset_basic;
        Alcotest.test_case "range/iter" `Quick test_bitset_range_iter;
        Alcotest.test_case "sparse pages" `Quick test_bitset_sparse_pages;
        QCheck_alcotest.to_alcotest qcheck_bitset_matches_set;
      ] );
    ( "util.stats",
      [
        Alcotest.test_case "basic" `Quick test_stats_basic;
        Alcotest.test_case "percentile" `Quick test_stats_percentile;
        Alcotest.test_case "running" `Quick test_stats_running;
        QCheck_alcotest.to_alcotest qcheck_running_matches_batch;
      ] );
    ( "util.crc32",
      [
        Alcotest.test_case "known vectors" `Quick test_crc32_vectors;
        Alcotest.test_case "running digest composes" `Quick test_crc32_compose;
        QCheck_alcotest.to_alcotest qcheck_crc32_detects_bitflips;
      ] );
    ( "util.render",
      [
        Alcotest.test_case "text_table" `Quick test_text_table;
        Alcotest.test_case "table arity" `Quick test_text_table_arity;
        Alcotest.test_case "cells" `Quick test_cells;
        Alcotest.test_case "csv" `Quick test_csv;
        Alcotest.test_case "strip chart" `Quick test_ascii_chart;
        Alcotest.test_case "bar chart" `Quick test_ascii_bar;
      ] );
  ]
