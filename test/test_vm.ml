open Tq_isa
open Tq_vm
open Tq_asm

(* ---------- helpers ---------- *)

let build ?(data = []) ?(extra_units = []) routines =
  Link.link_with_symbols
    ({ Link.uname = "test"; main_image = true; routines; data } :: extra_units)

let routine rname f =
  let b = Builder.create () in
  f b;
  { Link.rname; body = b }

let exit0 b =
  Builder.ins b (Isa.Li (Isa.reg_a0, 0));
  Builder.ins b (Isa.Syscall Sysno.exit)

let run_prog ?vfs (prog, syms) =
  let m = Machine.create ?vfs prog in
  Executor.run ~fuel:1_000_000 m;
  (m, syms)

let sym syms name = Hashtbl.find syms name

let word (m, syms) name = Memory.loads (Machine.mem m) ~width:Isa.W8 (sym syms name)

(* ---------- machine semantics ---------- *)

let test_arith () =
  let p =
    build
      ~data:[ { Link.dname = "result"; init = Zero 64 } ]
      [
        routine "_start" (fun b ->
            Builder.la b 20 "result";
            Builder.ins b (Isa.Li (10, 7));
            Builder.ins b (Isa.Li (11, 5));
            let store i off =
              Builder.ins b
                (Isa.Store { width = Isa.W8; src = i; base = 20; off; pred = None })
            in
            Builder.ins b (Isa.Bin (Isa.Mul, 12, 10, Isa.Reg 11));
            store 12 0;
            Builder.ins b (Isa.Bin (Isa.Div, 12, 10, Isa.Imm 2));
            store 12 8;
            Builder.ins b (Isa.Bin (Isa.Rem, 12, 10, Isa.Reg 11));
            store 12 16;
            Builder.ins b (Isa.Bin (Isa.Sub, 12, 11, Isa.Reg 10));
            store 12 24;
            Builder.ins b (Isa.Bin (Isa.Sll, 12, 10, Isa.Imm 3));
            store 12 32;
            Builder.ins b (Isa.Bin (Isa.Sra, 12, 12, Isa.Imm 2));
            store 12 40;
            Builder.ins b (Isa.Bin (Isa.Slt, 12, 11, Isa.Reg 10));
            store 12 48;
            Builder.ins b (Isa.Bin (Isa.Xor, 12, 10, Isa.Imm 0xff));
            store 12 56;
            exit0 b);
      ]
  in
  let r = run_prog p in
  let m, syms = r in
  let at off = Memory.loads (Machine.mem m) ~width:Isa.W8 (sym syms "result" + off) in
  Alcotest.(check int) "mul" 35 (at 0);
  Alcotest.(check int) "div" 3 (at 8);
  Alcotest.(check int) "rem" 2 (at 16);
  Alcotest.(check int) "sub negative" (-2) (at 24);
  Alcotest.(check int) "sll" 56 (at 32);
  Alcotest.(check int) "sra" 14 (at 40);
  Alcotest.(check int) "slt" 1 (at 48);
  Alcotest.(check int) "xor" (7 lxor 0xff) (at 56);
  Alcotest.(check (option int)) "exit code" (Some 0) (Machine.exit_code m)

let test_memory_widths () =
  let p =
    build
      ~data:[ { Link.dname = "buf"; init = Zero 64 } ]
      [
        routine "_start" (fun b ->
            Builder.la b 20 "buf";
            Builder.ins b (Isa.Li (10, 0xAB));
            Builder.ins b
              (Isa.Store { width = Isa.W1; src = 10; base = 20; off = 0; pred = None });
            Builder.ins b
              (Isa.Loads { width = Isa.W1; dst = 11; base = 20; off = 0 });
            Builder.ins b
              (Isa.Store { width = Isa.W8; src = 11; base = 20; off = 8; pred = None });
            Builder.ins b
              (Isa.Load { width = Isa.W1; dst = 12; base = 20; off = 0; pred = None });
            Builder.ins b
              (Isa.Store { width = Isa.W8; src = 12; base = 20; off = 16; pred = None });
            Builder.ins b (Isa.Li (13, 0x1234_5678));
            Builder.ins b
              (Isa.Store { width = Isa.W2; src = 13; base = 20; off = 24; pred = None });
            Builder.ins b
              (Isa.Load { width = Isa.W2; dst = 14; base = 20; off = 24; pred = None });
            Builder.ins b
              (Isa.Store { width = Isa.W8; src = 14; base = 20; off = 32; pred = None });
            exit0 b);
      ]
  in
  let m, syms = run_prog p in
  let at off = Memory.loads (Machine.mem m) ~width:Isa.W8 (sym syms "buf" + off) in
  Alcotest.(check int) "signed byte" (-85) (at 8);
  Alcotest.(check int) "unsigned byte" 0xAB (at 16);
  Alcotest.(check int) "u16 truncation" 0x5678 (at 32)

let test_float_ops () =
  let p =
    build
      ~data:[ { Link.dname = "fbuf"; init = Zero 64 } ]
      [
        routine "_start" (fun b ->
            Builder.la b 20 "fbuf";
            Builder.ins b (Isa.Fli (10, 1.5));
            Builder.ins b (Isa.Fli (11, 2.25));
            Builder.ins b (Isa.Fbin (Isa.Fadd, 12, 10, 11));
            Builder.ins b (Isa.Fstore { src = 12; base = 20; off = 0; pred = None });
            Builder.ins b (Isa.Fbin (Isa.Fmul, 12, 10, 11));
            Builder.ins b (Isa.Fstore { src = 12; base = 20; off = 8; pred = None });
            Builder.ins b (Isa.Fli (13, 2.0));
            Builder.ins b (Isa.Fun (Isa.Fsqrt, 14, 13));
            Builder.ins b (Isa.Fstore { src = 14; base = 20; off = 16; pred = None });
            Builder.ins b (Isa.Li (15, 7));
            Builder.ins b (Isa.I2f (16, 15));
            Builder.ins b (Isa.Fstore { src = 16; base = 20; off = 24; pred = None });
            Builder.ins b (Isa.Fli (17, -3.75));
            Builder.ins b (Isa.F2i (18, 17));
            Builder.ins b
              (Isa.Store { width = Isa.W8; src = 18; base = 20; off = 32; pred = None });
            exit0 b);
      ]
  in
  let m, syms = run_prog p in
  let atf off = Memory.load_f64 (Machine.mem m) (sym syms "fbuf" + off) in
  let feq = Alcotest.float 1e-12 in
  Alcotest.check feq "fadd" 3.75 (atf 0);
  Alcotest.check feq "fmul" 3.375 (atf 8);
  Alcotest.check feq "fsqrt" (sqrt 2.) (atf 16);
  Alcotest.check feq "i2f" 7. (atf 24);
  Alcotest.(check int) "f2i trunc toward zero" (-3)
    (Memory.loads (Machine.mem m) ~width:Isa.W8 (sym syms "fbuf" + 32))

let test_loop_sum () =
  let p =
    build
      ~data:[ { Link.dname = "result"; init = Zero 8 } ]
      [
        routine "_start" (fun b ->
            Builder.ins b (Isa.Li (10, 0));
            Builder.ins b (Isa.Li (11, 1));
            Builder.ins b (Isa.Li (12, 10));
            let loop = Builder.fresh_label b in
            let done_ = Builder.fresh_label b in
            Builder.place b loop;
            Builder.ins b (Isa.Bin (Isa.Sle, 13, 11, Isa.Reg 12));
            Builder.bz b 13 done_;
            Builder.ins b (Isa.Bin (Isa.Add, 10, 10, Isa.Reg 11));
            Builder.ins b (Isa.Bin (Isa.Add, 11, 11, Isa.Imm 1));
            Builder.jmp b loop;
            Builder.place b done_;
            Builder.la b 20 "result";
            Builder.ins b
              (Isa.Store { width = Isa.W8; src = 10; base = 20; off = 0; pred = None });
            exit0 b);
      ]
  in
  let r = run_prog p in
  Alcotest.(check int) "sum 1..10" 55 (word r "result")

let test_call_ret_stack () =
  let p =
    build
      ~data:[ { Link.dname = "result"; init = Zero 24 } ]
      [
        routine "_start" (fun b ->
            Builder.ins b (Isa.Mov (21, Isa.reg_sp));
            (* push one argument, cdecl style *)
            Builder.ins b (Isa.Bin (Isa.Sub, Isa.reg_sp, Isa.reg_sp, Isa.Imm 8));
            Builder.ins b (Isa.Li (10, 20));
            Builder.ins b
              (Isa.Store
                 { width = Isa.W8; src = 10; base = Isa.reg_sp; off = 0; pred = None });
            Builder.call b "double_it";
            Builder.ins b (Isa.Bin (Isa.Add, Isa.reg_sp, Isa.reg_sp, Isa.Imm 8));
            Builder.la b 20 "result";
            Builder.ins b
              (Isa.Store
                 { width = Isa.W8; src = Isa.reg_rv; base = 20; off = 0; pred = None });
            (* sp must be restored exactly *)
            Builder.ins b (Isa.Bin (Isa.Seq, 22, 21, Isa.Reg Isa.reg_sp));
            Builder.ins b
              (Isa.Store { width = Isa.W8; src = 22; base = 20; off = 8; pred = None });
            exit0 b);
        routine "double_it" (fun b ->
            (* arg at sp+8: return address was pushed at sp *)
            Builder.ins b
              (Isa.Load { width = Isa.W8; dst = 10; base = Isa.reg_sp; off = 8; pred = None });
            Builder.ins b (Isa.Bin (Isa.Add, Isa.reg_rv, 10, Isa.Reg 10));
            Builder.ins b Isa.Ret);
      ]
  in
  let r = run_prog p in
  Alcotest.(check int) "returned value" 40 (word r "result");
  let m, syms = r in
  Alcotest.(check int) "sp restored" 1
    (Memory.loads (Machine.mem m) ~width:Isa.W8 (sym syms "result" + 8))

let test_nested_calls () =
  (* f(n) = n<=1 ? 1 : n*f(n-1), recursive through the memory stack *)
  let p =
    build
      ~data:[ { Link.dname = "result"; init = Zero 8 } ]
      [
        routine "_start" (fun b ->
            Builder.ins b (Isa.Bin (Isa.Sub, Isa.reg_sp, Isa.reg_sp, Isa.Imm 8));
            Builder.ins b (Isa.Li (10, 6));
            Builder.ins b
              (Isa.Store
                 { width = Isa.W8; src = 10; base = Isa.reg_sp; off = 0; pred = None });
            Builder.call b "fact";
            Builder.ins b (Isa.Bin (Isa.Add, Isa.reg_sp, Isa.reg_sp, Isa.Imm 8));
            Builder.la b 20 "result";
            Builder.ins b
              (Isa.Store
                 { width = Isa.W8; src = Isa.reg_rv; base = 20; off = 0; pred = None });
            exit0 b);
        routine "fact" (fun b ->
            let recurse = Builder.fresh_label b in
            Builder.ins b
              (Isa.Load { width = Isa.W8; dst = 10; base = Isa.reg_sp; off = 8; pred = None });
            Builder.ins b (Isa.Bin (Isa.Sgt, 11, 10, Isa.Imm 1));
            Builder.bnz b 11 recurse;
            Builder.ins b (Isa.Li (Isa.reg_rv, 1));
            Builder.ins b Isa.Ret;
            Builder.place b recurse;
            (* save n on our frame, call fact(n-1) *)
            Builder.ins b (Isa.Bin (Isa.Sub, Isa.reg_sp, Isa.reg_sp, Isa.Imm 16));
            Builder.ins b
              (Isa.Store { width = Isa.W8; src = 10; base = Isa.reg_sp; off = 8; pred = None });
            Builder.ins b (Isa.Bin (Isa.Sub, 12, 10, Isa.Imm 1));
            Builder.ins b
              (Isa.Store { width = Isa.W8; src = 12; base = Isa.reg_sp; off = 0; pred = None });
            Builder.call b "fact";
            Builder.ins b
              (Isa.Load { width = Isa.W8; dst = 10; base = Isa.reg_sp; off = 8; pred = None });
            Builder.ins b (Isa.Bin (Isa.Add, Isa.reg_sp, Isa.reg_sp, Isa.Imm 16));
            Builder.ins b (Isa.Bin (Isa.Mul, Isa.reg_rv, Isa.reg_rv, Isa.Reg 10));
            Builder.ins b Isa.Ret);
      ]
  in
  let r = run_prog p in
  Alcotest.(check int) "6!" 720 (word r "result")

let test_predicated_store () =
  let p =
    build
      ~data:[ { Link.dname = "buf"; init = Zero 16 } ]
      [
        routine "_start" (fun b ->
            Builder.la b 20 "buf";
            Builder.ins b (Isa.Li (10, 99));
            Builder.ins b (Isa.Li (11, 0));
            Builder.ins b (Isa.Li (12, 1));
            Builder.ins b
              (Isa.Store { width = Isa.W8; src = 10; base = 20; off = 0; pred = Some 11 });
            Builder.ins b
              (Isa.Store { width = Isa.W8; src = 10; base = 20; off = 8; pred = Some 12 });
            exit0 b);
      ]
  in
  let m, syms = run_prog p in
  let at off = Memory.loads (Machine.mem m) ~width:Isa.W8 (sym syms "buf" + off) in
  Alcotest.(check int) "false predicate suppresses store" 0 (at 0);
  Alcotest.(check int) "true predicate stores" 99 (at 8)

let test_div_by_zero_traps () =
  let p, _ =
    build
      [
        routine "_start" (fun b ->
            Builder.ins b (Isa.Li (10, 1));
            Builder.ins b (Isa.Li (11, 0));
            Builder.ins b (Isa.Bin (Isa.Div, 12, 10, Isa.Reg 11));
            exit0 b);
      ]
  in
  let m = Machine.create p in
  Alcotest.(check bool) "traps" true
    (try
       Executor.run m;
       false
     with Machine.Trap { reason; _ } -> reason = "integer division by zero")

let test_reg_zero () =
  let p =
    build
      ~data:[ { Link.dname = "buf"; init = Zero 8 } ]
      [
        routine "_start" (fun b ->
            Builder.ins b (Isa.Li (Isa.reg_zero, 77));
            Builder.la b 20 "buf";
            Builder.ins b
              (Isa.Store
                 { width = Isa.W8; src = Isa.reg_zero; base = 20; off = 0; pred = None });
            exit0 b);
      ]
  in
  let r = run_prog p in
  Alcotest.(check int) "x0 ignores writes" 0 (word r "buf")

let test_syscalls_console_and_clock () =
  let p, _ =
    build
      [
        routine "_start" (fun b ->
            Builder.ins b (Isa.Li (Isa.reg_a0, 42));
            Builder.ins b (Isa.Syscall Sysno.putint);
            Builder.ins b (Isa.Li (Isa.reg_a0, Char.code '\n'));
            Builder.ins b (Isa.Syscall Sysno.putchar);
            Builder.ins b (Isa.Syscall Sysno.clock);
            Builder.ins b (Isa.Bin (Isa.Sgt, 10, Isa.reg_rv, Isa.Imm 0));
            Builder.ins b (Isa.Mov (Isa.reg_a0, 10));
            Builder.ins b (Isa.Syscall Sysno.exit));
      ]
  in
  let m = Machine.create p in
  Executor.run m;
  Alcotest.(check string) "console" "42\n" (Machine.stdout_contents m);
  Alcotest.(check (option int)) "clock > 0" (Some 1) (Machine.exit_code m)

let test_file_io () =
  let vfs = Vfs.create () in
  Vfs.install vfs "in.dat" "hello";
  let p, _ =
    build
      ~data:
        [
          { Link.dname = "path_in"; init = Bytes "in.dat\000" };
          { Link.dname = "path_out"; init = Bytes "out.dat\000" };
          { Link.dname = "buf"; init = Zero 16 };
        ]
      [
        routine "_start" (fun b ->
            (* fd = open("in.dat", read) *)
            Builder.la b Isa.reg_a0 "path_in";
            Builder.ins b (Isa.Li (Isa.reg_a0 + 1, 0));
            Builder.ins b (Isa.Syscall Sysno.open_);
            Builder.ins b (Isa.Mov (20, Isa.reg_rv));
            (* n = read(fd, buf, 16) *)
            Builder.ins b (Isa.Mov (Isa.reg_a0, 20));
            Builder.la b (Isa.reg_a0 + 1) "buf";
            Builder.ins b (Isa.Li (Isa.reg_a0 + 2, 16));
            Builder.ins b (Isa.Syscall Sysno.read);
            Builder.ins b (Isa.Mov (21, Isa.reg_rv));
            Builder.ins b (Isa.Mov (Isa.reg_a0, 20));
            Builder.ins b (Isa.Syscall Sysno.close);
            (* out = open("out.dat", write); write(out, buf, n) *)
            Builder.la b Isa.reg_a0 "path_out";
            Builder.ins b (Isa.Li (Isa.reg_a0 + 1, 1));
            Builder.ins b (Isa.Syscall Sysno.open_);
            Builder.ins b (Isa.Mov (22, Isa.reg_rv));
            Builder.ins b (Isa.Mov (Isa.reg_a0, 22));
            Builder.la b (Isa.reg_a0 + 1) "buf";
            Builder.ins b (Isa.Mov (Isa.reg_a0 + 2, 21));
            Builder.ins b (Isa.Syscall Sysno.write);
            Builder.ins b (Isa.Mov (Isa.reg_a0, 22));
            Builder.ins b (Isa.Syscall Sysno.close);
            exit0 b);
      ]
  in
  let m = Machine.create ~vfs p in
  Executor.run m;
  Alcotest.(check (option string)) "copied through VM" (Some "hello")
    (Vfs.contents vfs "out.dat")

let test_brk () =
  let p, _ =
    build
      [
        routine "_start" (fun b ->
            Builder.ins b (Isa.Li (Isa.reg_a0, 0));
            Builder.ins b (Isa.Syscall Sysno.brk);
            Builder.ins b (Isa.Mov (20, Isa.reg_rv));
            Builder.ins b (Isa.Bin (Isa.Add, Isa.reg_a0, 20, Isa.Imm 4096));
            Builder.ins b (Isa.Syscall Sysno.brk);
            Builder.ins b (Isa.Bin (Isa.Sub, 21, Isa.reg_rv, Isa.Reg 20));
            Builder.ins b (Isa.Mov (Isa.reg_a0, 21));
            Builder.ins b (Isa.Syscall Sysno.exit));
      ]
  in
  let m = Machine.create p in
  Executor.run m;
  Alcotest.(check (option int)) "brk grew by 4096" (Some 4096)
    (Machine.exit_code m)

let test_executor_fuel () =
  let p, _ =
    build
      [
        routine "_start" (fun b ->
            let loop = Builder.fresh_label b in
            Builder.place b loop;
            Builder.jmp b loop);
      ]
  in
  let m = Machine.create p in
  Alcotest.(check bool) "out of fuel" true
    (try
       Executor.run ~fuel:1000 m;
       false
     with Executor.Out_of_fuel n -> n >= 1000)

let test_run_steps () =
  let p, _ =
    build
      [
        routine "_start" (fun b ->
            let loop = Builder.fresh_label b in
            Builder.place b loop;
            Builder.ins b Isa.Nop;
            Builder.jmp b loop);
      ]
  in
  let m = Machine.create p in
  Alcotest.(check int) "run_steps steps exactly" 17 (Executor.run_steps m 17);
  Alcotest.(check int) "instr_count agrees" 17 (Machine.instr_count m)

(* ---------- memory unit ---------- *)

let test_memory_cross_page () =
  let mem = Memory.create () in
  let addr = 4096 - 3 in
  Memory.store mem ~width:Isa.W8 addr 0x1122334455667788;
  Alcotest.(check int) "cross page roundtrip" 0x1122334455667788
    (Memory.load mem ~width:Isa.W8 addr);
  Memory.store_f64 mem (2 * 4096 - 4) 3.14159;
  Alcotest.(check (float 0.)) "cross page float" 3.14159
    (Memory.load_f64 mem (2 * 4096 - 4))

let test_memory_bulk () =
  let mem = Memory.create () in
  Memory.write_bytes mem 5000 (Bytes.of_string "abcdef");
  Alcotest.(check string) "read back" "abcdef"
    (Bytes.to_string (Memory.read_bytes mem 5000 6));
  Alcotest.(check string) "zero beyond" "\000"
    (Bytes.to_string (Memory.read_bytes mem 5006 1));
  Memory.write_bytes mem 6000 (Bytes.of_string "path\000junk");
  Alcotest.(check string) "cstring" "path" (Memory.read_cstring mem 6000)

let qcheck_memory_roundtrip =
  QCheck.Test.make ~name:"memory store/load roundtrip (all widths)" ~count:300
    QCheck.(
      triple (int_bound 100_000)
        (oneofl [ Isa.W1; Isa.W2; Isa.W4; Isa.W8 ])
        (int_bound max_int))
    (fun (addr, width, v) ->
      let mem = Memory.create () in
      Memory.store mem ~width addr v;
      let bits = Isa.width_bytes width * 8 in
      let expected = if bits >= Sys.int_size then v else v land ((1 lsl bits) - 1) in
      Memory.load mem ~width addr = expected)

let qcheck_memory_f64 =
  QCheck.Test.make ~name:"memory f64 roundtrip" ~count:200
    QCheck.(pair (int_bound 1_000_000) float)
    (fun (addr, v) ->
      let mem = Memory.create () in
      Memory.store_f64 mem addr v;
      let got = Memory.load_f64 mem addr in
      Int64.bits_of_float got = Int64.bits_of_float v)

let test_memory_negative_f64 () =
  (* load_f64/store_f64 must reject negative addresses exactly like the
     integer paths do *)
  let mem = Memory.create () in
  let expect_invalid name f =
    Alcotest.(check bool) name true
      (try
         ignore (f ());
         false
       with Invalid_argument _ -> true)
  in
  expect_invalid "load_f64 negative" (fun () -> Memory.load_f64 mem (-8));
  expect_invalid "store_f64 negative" (fun () ->
      Memory.store_f64 mem (-8) 1.0;
      0.)

let test_memory_page_cache_stats () =
  let mem = Memory.create () in
  let s0 = Memory.cache_stats mem in
  Alcotest.(check int) "fresh: no hits" 0 s0.Memory.hits;
  Alcotest.(check int) "fresh: no misses" 0 s0.Memory.misses;
  Memory.store mem ~width:Isa.W8 0 42;
  let s1 = Memory.cache_stats mem in
  Alcotest.(check bool) "first touch misses" true (s1.Memory.misses > 0);
  for _ = 1 to 10 do
    ignore (Memory.load mem ~width:Isa.W8 0)
  done;
  let s2 = Memory.cache_stats mem in
  Alcotest.(check bool) "repeated touches hit" true
    (s2.Memory.hits >= s1.Memory.hits + 10);
  Alcotest.(check int) "no new misses on the hot page" s1.Memory.misses
    s2.Memory.misses

let qcheck_memory_w8_fast_path =
  (* the aligned W8 fast path must agree with the generic width-dispatched
     path at every alignment, including page-straddling addresses *)
  QCheck.Test.make ~name:"load_w8/store_w8 == load/store ~width:W8" ~count:300
    QCheck.(pair (int_bound 20_000) (int_bound max_int))
    (fun (addr, v) ->
      let m1 = Memory.create () and m2 = Memory.create () in
      Memory.store_w8 m1 addr v;
      Memory.store m2 ~width:Isa.W8 addr v;
      Memory.load_w8 m1 addr = Memory.load m1 ~width:Isa.W8 addr
      && Memory.load_w8 m1 addr = Memory.load_w8 m2 addr
      && Memory.load_w8 m2 addr = Memory.load m2 ~width:Isa.W8 addr)

(* ---------- symtab / layout ---------- *)

let mk_routine id name entry size =
  { Symtab.id; name; entry; size; image = "img"; is_main_image = true }

let test_symtab_lookup () =
  let t =
    Symtab.build
      [ mk_routine 0 "b" 200 40; mk_routine 0 "a" 100 52; mk_routine 0 "c" 400 8 ]
  in
  Alcotest.(check int) "count" 3 (Symtab.count t);
  let name_at addr =
    Symtab.find t addr |> Option.map (fun r -> r.Symtab.name)
  in
  Alcotest.(check (option string)) "entry hit" (Some "a") (name_at 100);
  Alcotest.(check (option string)) "interior hit" (Some "a") (name_at 148);
  Alcotest.(check (option string)) "boundary miss" None (name_at 152);
  Alcotest.(check (option string)) "hole" None (name_at 300);
  Alcotest.(check (option string)) "last" (Some "c") (name_at 404);
  Alcotest.(check (option string)) "below" None (name_at 50);
  (* ids are densely reassigned in address order *)
  Alcotest.(check string) "by_id order" "a" (Symtab.by_id t 0).Symtab.name;
  Alcotest.(check (option string)) "by_name" (Some "b")
    (Symtab.by_name t "b" |> Option.map (fun r -> r.Symtab.name))

let test_symtab_overlap () =
  Alcotest.(check bool) "overlap rejected" true
    (try
       ignore (Symtab.build [ mk_routine 0 "a" 100 52; mk_routine 0 "b" 120 8 ]);
       false
     with Invalid_argument _ -> true)

let test_layout_stack_classification () =
  let sp = Layout.stack_top - 256 in
  Alcotest.(check bool) "local above sp" true
    (Layout.is_stack_addr ~sp (sp + 16));
  Alcotest.(check bool) "red zone below sp" true
    (Layout.is_stack_addr ~sp (sp - 8));
  Alcotest.(check bool) "global data" false
    (Layout.is_stack_addr ~sp Layout.data_base);
  Alcotest.(check bool) "heap" false
    (Layout.is_stack_addr ~sp (Layout.data_base + 100_000));
  Alcotest.(check bool) "beyond stack top" false
    (Layout.is_stack_addr ~sp Layout.stack_top)

(* ---------- link errors ---------- *)

let test_link_undefined () =
  Alcotest.(check bool) "undefined symbol" true
    (try
       ignore
         (build
            [
              routine "_start" (fun b ->
                  Builder.call b "nope";
                  exit0 b);
            ]);
       false
     with Link.Link_error msg -> msg = "undefined symbol: nope")

let test_link_duplicate () =
  Alcotest.(check bool) "duplicate symbol" true
    (try
       ignore
         (build
            [
              routine "_start" exit0;
              routine "f" exit0;
              routine "f" exit0;
            ]);
       false
     with Link.Link_error msg -> msg = "duplicate symbol: f")

let test_link_library_image () =
  let lib =
    {
      Link.uname = "librt";
      main_image = false;
      routines = [ routine "helper" (fun b -> Builder.ins b Isa.Ret) ];
      data = [];
    }
  in
  let p, _ =
    build ~extra_units:[ lib ]
      [
        routine "_start" (fun b ->
            Builder.call b "helper";
            exit0 b);
      ]
  in
  let r = Symtab.by_name p.Program.symtab "helper" |> Option.get in
  Alcotest.(check bool) "library flag" false r.Symtab.is_main_image;
  Alcotest.(check string) "image name" "librt" r.Symtab.image;
  let m = Machine.create p in
  Executor.run m;
  Alcotest.(check (option int)) "runs through library call" (Some 0)
    (Machine.exit_code m)

let test_disassemble () =
  let p, _ =
    build
      [
        routine "_start" (fun b ->
            Builder.ins b (Isa.Li (10, 5));
            exit0 b);
      ]
  in
  let s = Program.disassemble p in
  Alcotest.(check bool) "has routine header" true
    (Astring_contains.contains s "<_start>");
  Alcotest.(check bool) "has li" true (Astring_contains.contains s "li x10, 5")

let suites =
  [
    ( "vm.machine",
      [
        Alcotest.test_case "arith" `Quick test_arith;
        Alcotest.test_case "memory widths" `Quick test_memory_widths;
        Alcotest.test_case "float ops" `Quick test_float_ops;
        Alcotest.test_case "loop sum" `Quick test_loop_sum;
        Alcotest.test_case "call/ret stack" `Quick test_call_ret_stack;
        Alcotest.test_case "recursion" `Quick test_nested_calls;
        Alcotest.test_case "predicated store" `Quick test_predicated_store;
        Alcotest.test_case "div by zero" `Quick test_div_by_zero_traps;
        Alcotest.test_case "x0 hardwired" `Quick test_reg_zero;
        Alcotest.test_case "console+clock" `Quick test_syscalls_console_and_clock;
        Alcotest.test_case "file io" `Quick test_file_io;
        Alcotest.test_case "brk" `Quick test_brk;
        Alcotest.test_case "fuel" `Quick test_executor_fuel;
        Alcotest.test_case "run_steps" `Quick test_run_steps;
      ] );
    ( "vm.memory",
      [
        Alcotest.test_case "cross page" `Quick test_memory_cross_page;
        Alcotest.test_case "bulk + cstring" `Quick test_memory_bulk;
        QCheck_alcotest.to_alcotest qcheck_memory_roundtrip;
        QCheck_alcotest.to_alcotest qcheck_memory_f64;
        Alcotest.test_case "f64 negative address" `Quick test_memory_negative_f64;
        Alcotest.test_case "page cache stats" `Quick test_memory_page_cache_stats;
        QCheck_alcotest.to_alcotest qcheck_memory_w8_fast_path;
      ] );
    ( "vm.symtab",
      [
        Alcotest.test_case "lookup" `Quick test_symtab_lookup;
        Alcotest.test_case "overlap" `Quick test_symtab_overlap;
        Alcotest.test_case "stack classification" `Quick
          test_layout_stack_classification;
      ] );
    ( "asm.link",
      [
        Alcotest.test_case "undefined symbol" `Quick test_link_undefined;
        Alcotest.test_case "duplicate symbol" `Quick test_link_duplicate;
        Alcotest.test_case "library image" `Quick test_link_library_image;
        Alcotest.test_case "disassemble" `Quick test_disassemble;
      ] );
  ]
